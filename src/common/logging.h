// Assertions and structured leveled logging.
//
// QFIX_CHECK(cond) aborts with a message when an internal invariant is
// violated; it is active in all build types because a wrong repair is far
// worse than a crash in this domain. Extra context can be streamed in:
//   QFIX_CHECK(i < n) << "index " << i;
//
// LogEvent emits one structured line per event, plain by default:
//   2026-08-08T12:00:00Z INFO server_started port=8080 loops=2
// or, with SetLogJson(true), one JSON object per line:
//   {"ts":"2026-08-08T12:00:00Z","level":"info","event":"server_started",...}
// Events below the level set by SetLogLevel() are dropped at the call
// site (no field formatting happens). Usage:
//   LogEvent(LogLevel::kInfo, "server_started")
//       .Int("port", port).Int("loops", n);
// The line is emitted when the temporary dies. SetLogSink() redirects
// output (tests capture lines instead of reading stderr).
#ifndef QFIX_COMMON_LOGGING_H_
#define QFIX_COMMON_LOGGING_H_

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace qfix {
namespace internal {

/// Accumulates a failure message and aborts on destruction.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* condition) {
    stream_ << "QFIX_CHECK failed at " << file << ":" << line << ": "
            << condition << " ";
  }
  [[noreturn]] ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Binds looser than operator<< so streamed context is collected before
/// the expression is voided (glog idiom).
class Voidify {
 public:
  // Const ref binds both the bare temporary and the result of operator<<.
  void operator&(const CheckFailStream&) {}
};

}  // namespace internal

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// "debug" / "info" / "warn" / "error" / "off".
const char* LogLevelName(LogLevel level);
/// Parses a level name; false on unknown input (out untouched).
bool ParseLogLevel(std::string_view name, LogLevel* out);

/// Process-wide minimum level (default kInfo). Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Process-wide output format: plain key=value lines (default) or one
/// JSON object per line. Thread-safe.
void SetLogJson(bool json);
bool GetLogJson();

/// Redirects emitted lines (without trailing newline). nullptr restores
/// the default stderr sink. Thread-safe; the sink runs under a lock, so
/// lines never interleave.
using LogSink = std::function<void(const std::string&)>;
void SetLogSink(LogSink sink);

/// Process-wide token-bucket cap on WARN-level lines per second
/// (burst = max(1, per_sec); 0 = unlimited, the default). An overload
/// that would emit thousands of slow_request/stall warnings per second
/// keeps the first `per_sec` each second and drops the rest at the
/// call site (no formatting happens for dropped lines). ERROR lines
/// are never rate-limited. Calling this resets the bucket to full.
/// Thread-safe.
void SetWarnLogPerSec(double per_sec);
/// Lifetime count of WARN lines dropped by the rate limit (exported
/// as qfix_log_lines_dropped_total).
uint64_t DroppedLogLines();

/// One structured log event; fields accumulate, the line is emitted on
/// destruction. Cheap when filtered: a disabled event records nothing.
class LogEvent {
 public:
  LogEvent(LogLevel level, std::string_view event);
  ~LogEvent();

  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  LogEvent& Str(std::string_view key, std::string_view value);
  LogEvent& Int(std::string_view key, int64_t value);
  LogEvent& Uint(std::string_view key, uint64_t value);
  LogEvent& Double(std::string_view key, double value);
  LogEvent& Bool(std::string_view key, bool value);

 private:
  struct Field {
    std::string key;
    std::string value;  // pre-formatted
    bool quoted = false;
  };

  bool enabled_;
  LogLevel level_;
  std::string event_;
  std::vector<Field> fields_;
};

}  // namespace qfix

#define QFIX_CHECK(cond)                               \
  (cond) ? (void)0                                     \
         : ::qfix::internal::Voidify() &               \
               ::qfix::internal::CheckFailStream(__FILE__, __LINE__, #cond)

#define QFIX_CHECK_OK(status_expr)                                   \
  do {                                                               \
    const ::qfix::Status& _qfix_s = (status_expr);                   \
    QFIX_CHECK(_qfix_s.ok()) << _qfix_s.ToString();                  \
  } while (0)

#endif  // QFIX_COMMON_LOGGING_H_
