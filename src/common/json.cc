#include "common/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace qfix {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (levels_.empty()) {
    QFIX_CHECK(!root_written_) << "JSON documents have a single root";
    root_written_ = true;
    return;
  }
  Level& top = levels_.back();
  if (top.kind == 'o') {
    QFIX_CHECK(have_key_) << "object values need a Key() first";
    have_key_ = false;
  } else {
    if (top.has_elements) out_ += ',';
    top.has_elements = true;
  }
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  levels_.push_back({'o', false});
}

void JsonWriter::EndObject() {
  QFIX_CHECK(!levels_.empty() && levels_.back().kind == 'o');
  QFIX_CHECK(!have_key_) << "dangling Key() at EndObject";
  levels_.pop_back();
  out_ += '}';
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  levels_.push_back({'a', false});
}

void JsonWriter::EndArray() {
  QFIX_CHECK(!levels_.empty() && levels_.back().kind == 'a');
  levels_.pop_back();
  out_ += ']';
}

void JsonWriter::Key(std::string_view key) {
  QFIX_CHECK(!levels_.empty() && levels_.back().kind == 'o')
      << "Key() outside an object";
  QFIX_CHECK(!have_key_) << "two keys in a row";
  if (levels_.back().has_elements) out_ += ',';
  levels_.back().has_elements = true;
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  have_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  out_ += buf;
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  out_ += buf;
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return;
  }
  // Shortest representation that parses back exactly (same policy as
  // FormatNumber; JSON numbers are doubles everywhere that matters).
  char buf[64];
  for (int precision : {6, 15, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::Raw(std::string_view json) {
  QFIX_CHECK(!json.empty()) << "Raw() with empty document";
  BeforeValue();
  out_.append(json.data(), json.size());
}

}  // namespace qfix
