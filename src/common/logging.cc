#include "common/logging.h"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <ctime>
#include <mutex>

#include "common/json.h"
#include "common/strings.h"
#include "common/timer.h"

namespace qfix {

namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<bool> g_log_json{false};

// WARN-line token bucket. The rate is read with one relaxed load on
// every WARN (zero means the bucket is bypassed entirely); only
// rate-limited WARNs take the bucket mutex.
std::atomic<double> g_warn_per_sec{0.0};
std::atomic<uint64_t> g_dropped_lines{0};

struct WarnBucket {
  std::mutex mu;
  double tokens = 0.0;
  double last_refill_seconds = 0.0;
};

WarnBucket& TheWarnBucket() {
  static WarnBucket* bucket = new WarnBucket();
  return *bucket;
}

/// True when this WARN line may be emitted.
bool AcquireWarnToken() {
  double rate = g_warn_per_sec.load(std::memory_order_relaxed);
  if (rate <= 0.0) return true;
  const double burst = rate < 1.0 ? 1.0 : rate;
  WarnBucket& bucket = TheWarnBucket();
  std::lock_guard<std::mutex> lock(bucket.mu);
  double now = MonotonicSeconds();
  bucket.tokens += (now - bucket.last_refill_seconds) * rate;
  if (bucket.tokens > burst) bucket.tokens = burst;
  bucket.last_refill_seconds = now;
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return true;
  }
  return false;
}

std::mutex& SinkMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

LogSink& SinkSlot() {
  static LogSink* sink = new LogSink();
  return *sink;
}

void Emit(const std::string& line) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  LogSink& sink = SinkSlot();
  if (sink) {
    sink(line);
  } else {
    fprintf(stderr, "%s\n", line.c_str());
  }
}

std::string UtcTimestamp() {
  std::time_t now = std::time(nullptr);
  std::tm tm_buf;
  gmtime_r(&now, &tm_buf);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_buf);
  return buf;
}

const char* LevelUpper(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

/// Plain format quotes a value when it contains anything that would
/// break naive key=value splitting.
bool NeedsQuoting(std::string_view value) {
  if (value.empty()) return true;
  for (char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' || c == '\n' ||
        c == '\t') {
      return true;
    }
  }
  return false;
}

void AppendQuoted(std::string* out, std::string_view value) {
  *out += '"';
  for (char c : value) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '"': *out += "\\\""; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default: *out += c;
    }
  }
  *out += '"';
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

bool ParseLogLevel(std::string_view name, LogLevel* out) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                         LogLevel::kError, LogLevel::kOff}) {
    if (name == LogLevelName(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogJson(bool json) {
  g_log_json.store(json, std::memory_order_relaxed);
}

bool GetLogJson() { return g_log_json.load(std::memory_order_relaxed); }

void SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  SinkSlot() = std::move(sink);
}

void SetWarnLogPerSec(double per_sec) {
  WarnBucket& bucket = TheWarnBucket();
  std::lock_guard<std::mutex> lock(bucket.mu);
  g_warn_per_sec.store(per_sec, std::memory_order_relaxed);
  bucket.tokens = per_sec < 1.0 ? 1.0 : per_sec;  // reset to full burst
  bucket.last_refill_seconds = MonotonicSeconds();
}

uint64_t DroppedLogLines() {
  return g_dropped_lines.load(std::memory_order_relaxed);
}

LogEvent::LogEvent(LogLevel level, std::string_view event)
    : enabled_(level >= GetLogLevel() && level != LogLevel::kOff),
      level_(level),
      event_(enabled_ ? std::string(event) : std::string()) {
  if (enabled_ && level == LogLevel::kWarn && !AcquireWarnToken()) {
    enabled_ = false;
    event_.clear();
    g_dropped_lines.fetch_add(1, std::memory_order_relaxed);
  }
}

LogEvent& LogEvent::Str(std::string_view key, std::string_view value) {
  if (enabled_) {
    fields_.push_back(
        {std::string(key), std::string(value), /*quoted=*/true});
  }
  return *this;
}

LogEvent& LogEvent::Int(std::string_view key, int64_t value) {
  if (enabled_) {
    fields_.push_back({std::string(key),
                       StringPrintf("%lld", static_cast<long long>(value)),
                       /*quoted=*/false});
  }
  return *this;
}

LogEvent& LogEvent::Uint(std::string_view key, uint64_t value) {
  if (enabled_) {
    fields_.push_back(
        {std::string(key),
         StringPrintf("%llu", static_cast<unsigned long long>(value)),
         /*quoted=*/false});
  }
  return *this;
}

LogEvent& LogEvent::Double(std::string_view key, double value) {
  if (enabled_) {
    // Non-finite values would break JSON consumers; quote them.
    if (std::isfinite(value)) {
      fields_.push_back(
          {std::string(key), StringPrintf("%.6g", value), /*quoted=*/false});
    } else {
      fields_.push_back({std::string(key),
                         value > 0 ? "inf" : (value < 0 ? "-inf" : "nan"),
                         /*quoted=*/true});
    }
  }
  return *this;
}

LogEvent& LogEvent::Bool(std::string_view key, bool value) {
  if (enabled_) {
    fields_.push_back(
        {std::string(key), value ? "true" : "false", /*quoted=*/false});
  }
  return *this;
}

LogEvent::~LogEvent() {
  if (!enabled_) return;
  std::string line;
  if (GetLogJson()) {
    JsonWriter w;
    w.BeginObject();
    w.Key("ts");
    w.String(UtcTimestamp());
    w.Key("level");
    w.String(LogLevelName(level_));
    w.Key("event");
    w.String(event_);
    for (const Field& f : fields_) {
      w.Key(f.key);
      if (f.quoted) {
        w.String(f.value);
      } else {
        w.Raw(f.value);
      }
    }
    w.EndObject();
    line = w.str();
  } else {
    line = UtcTimestamp();
    line += ' ';
    line += LevelUpper(level_);
    line += ' ';
    line += event_;
    for (const Field& f : fields_) {
      line += ' ';
      line += f.key;
      line += '=';
      if (f.quoted && NeedsQuoting(f.value)) {
        AppendQuoted(&line, f.value);
      } else {
        line += f.value;
      }
    }
  }
  Emit(line);
}

}  // namespace qfix
