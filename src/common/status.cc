#include "common/status.h"

namespace qfix {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInfeasible:
      return "Infeasible";
    case StatusCode::kUnbounded:
      return "Unbounded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace qfix
