// Deterministic random number generation for workload synthesis.
//
// All generators in this library take an explicit Rng so experiments are
// reproducible from a seed, matching the paper's fixed corruption indexes.
#ifndef QFIX_COMMON_RANDOM_H_
#define QFIX_COMMON_RANDOM_H_

#include <cstdint>
#include <random>
#include <vector>

#include "common/logging.h"

namespace qfix {

/// A seeded pseudo-random generator with convenience samplers.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    QFIX_CHECK(lo <= hi) << "UniformInt bounds [" << lo << "," << hi << "]";
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Picks a uniformly random element index of a container of size n > 0.
  size_t Index(size_t n) {
    QFIX_CHECK(n > 0) << "Index() over empty range";
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Samples k distinct indexes from [0, n) without replacement.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Exposes the engine for std:: distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipfian sampler over {0, ..., n-1} with exponent s >= 0.
///
/// s = 0 degenerates to the uniform distribution; larger s concentrates
/// mass on low indexes. Used for the attribute-skew experiments (Fig. 8d).
class ZipfianDistribution {
 public:
  ZipfianDistribution(size_t n, double s);

  /// Draws one sample in [0, n).
  size_t Sample(Rng& rng) const;

  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative probabilities, cdf_.back() == 1
};

}  // namespace qfix

#endif  // QFIX_COMMON_RANDOM_H_
