#include "common/strings.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace qfix {

std::string FormatNumber(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  // Integers (within double precision) print without a decimal point.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Shortest of %.6g, %.15g, %.17g that parses back to the same double:
  // printed SQL and checkpoints must replay to the exact repaired state
  // (a %.6g-truncated WHERE threshold can silently re-include a tuple
  // the repair excluded by an epsilon margin).
  char buf[64];
  for (int precision : {6, 15, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  if (n < 0) {
    va_end(ap2);
    return "";
  }
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

}  // namespace qfix
