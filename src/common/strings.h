// Small string helpers shared by the SQL printer and the bench tables.
#ifndef QFIX_COMMON_STRINGS_H_
#define QFIX_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace qfix {

/// Formats a double without trailing zeros: 3.0 -> "3", 0.25 -> "0.25".
/// Used when printing repaired query constants back as SQL.
std::string FormatNumber(double v);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace qfix

#endif  // QFIX_COMMON_STRINGS_H_
