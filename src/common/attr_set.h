// AttrSet: a small dynamic bitset over attribute indexes.
//
// Query/attribute slicing (paper §5.2-5.3) manipulates sets of attribute
// ids heavily; this type keeps those operations allocation-light for the
// wide-table experiments (up to ~500 attributes, Fig. 7a).
#ifndef QFIX_COMMON_ATTR_SET_H_
#define QFIX_COMMON_ATTR_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace qfix {

/// A set of attribute indexes in [0, capacity), stored as a bitset.
class AttrSet {
 public:
  AttrSet() = default;

  /// Creates an empty set over attributes [0, capacity).
  explicit AttrSet(size_t capacity)
      : capacity_(capacity), words_((capacity + 63) / 64, 0) {}

  size_t capacity() const { return capacity_; }

  void Insert(size_t i) {
    QFIX_CHECK(i < capacity_) << "attr " << i << " >= " << capacity_;
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }

  void Erase(size_t i) {
    QFIX_CHECK(i < capacity_) << "attr " << i << " >= " << capacity_;
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  bool Contains(size_t i) const {
    if (i >= capacity_) return false;
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of attributes in the set.
  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  bool Empty() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// In-place union. Requires identical capacities.
  AttrSet& UnionWith(const AttrSet& other) {
    QFIX_CHECK(capacity_ == other.capacity_);
    for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }

  /// Returns the intersection of two sets of identical capacity.
  AttrSet Intersect(const AttrSet& other) const {
    QFIX_CHECK(capacity_ == other.capacity_);
    AttrSet out(capacity_);
    for (size_t i = 0; i < words_.size(); ++i) {
      out.words_[i] = words_[i] & other.words_[i];
    }
    return out;
  }

  /// True if the two sets share at least one attribute.
  bool Intersects(const AttrSet& other) const {
    QFIX_CHECK(capacity_ == other.capacity_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((words_[i] & other.words_[i]) != 0) return true;
    }
    return false;
  }

  /// True if every attribute of `other` is also in this set.
  bool ContainsAll(const AttrSet& other) const {
    QFIX_CHECK(capacity_ == other.capacity_);
    for (size_t i = 0; i < words_.size(); ++i) {
      if ((other.words_[i] & ~words_[i]) != 0) return false;
    }
    return true;
  }

  bool operator==(const AttrSet& other) const {
    return capacity_ == other.capacity_ && words_ == other.words_;
  }

  /// Materializes the member indexes in increasing order.
  std::vector<size_t> ToVector() const {
    std::vector<size_t> out;
    for (size_t i = 0; i < capacity_; ++i) {
      if (Contains(i)) out.push_back(i);
    }
    return out;
  }

 private:
  size_t capacity_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace qfix

#endif  // QFIX_COMMON_ATTR_SET_H_
