#include "common/random.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace qfix {

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  QFIX_CHECK(k <= n) << "cannot sample " << k << " from " << n;
  // Partial Fisher-Yates: only the first k slots need shuffling.
  std::vector<size_t> pool(n);
  std::iota(pool.begin(), pool.end(), size_t{0});
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + Index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

ZipfianDistribution::ZipfianDistribution(size_t n, double s) {
  QFIX_CHECK(n > 0) << "zipfian over empty support";
  QFIX_CHECK(s >= 0.0) << "zipfian exponent must be non-negative";
  cdf_.resize(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding drift
}

size_t ZipfianDistribution::Sample(Rng& rng) const {
  double u = rng.UniformReal(0.0, 1.0);
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace qfix
