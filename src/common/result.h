// Result<T>: value-or-Status, the library's standard fallible return type.
#ifndef QFIX_COMMON_RESULT_H_
#define QFIX_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace qfix {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced. Accessing the value of an errored Result
/// aborts (library-bug territory), so callers must check ok() first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    QFIX_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    QFIX_CHECK(ok()) << "value() on errored Result: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    QFIX_CHECK(ok()) << "value() on errored Result: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    QFIX_CHECK(ok()) << "value() on errored Result: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace qfix

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// error status to the caller.
#define QFIX_ASSIGN_OR_RETURN(lhs, expr)           \
  QFIX_ASSIGN_OR_RETURN_IMPL_(                     \
      QFIX_CONCAT_(_qfix_result_, __LINE__), lhs, expr)

#define QFIX_CONCAT_INNER_(a, b) a##b
#define QFIX_CONCAT_(a, b) QFIX_CONCAT_INNER_(a, b)
#define QFIX_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // QFIX_COMMON_RESULT_H_
