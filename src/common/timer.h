// Wall-clock timing for the experiment harness.
#ifndef QFIX_COMMON_TIMER_H_
#define QFIX_COMMON_TIMER_H_

#include <chrono>

namespace qfix {

/// Seconds on the process-wide monotonic clock. All solver/engine timing
/// goes through this single helper so timestamps taken on different
/// threads (e.g. per-worker MilpStats) are directly comparable and never
/// subject to wall-clock adjustments.
inline double MonotonicSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Measures elapsed wall-clock time from construction (or Restart()).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft deadline. Zero or negative budget means "no limit".
class Deadline {
 public:
  /// Creates a deadline `seconds` from now; non-positive = unlimited.
  static Deadline AfterSeconds(double seconds) { return Deadline(seconds); }
  /// Creates an unlimited deadline.
  static Deadline Unlimited() { return Deadline(0.0); }

  bool Expired() const {
    return limit_seconds_ > 0.0 && timer_.ElapsedSeconds() >= limit_seconds_;
  }

  double RemainingSeconds() const {
    if (limit_seconds_ <= 0.0) return 1e30;
    double rem = limit_seconds_ - timer_.ElapsedSeconds();
    return rem > 0.0 ? rem : 0.0;
  }

 private:
  explicit Deadline(double limit_seconds) : limit_seconds_(limit_seconds) {}
  double limit_seconds_;
  WallTimer timer_;
};

}  // namespace qfix

#endif  // QFIX_COMMON_TIMER_H_
