// Status: lightweight error propagation for operations that can fail.
//
// Follows the RocksDB/Arrow convention: functions that can fail return a
// Status (or a Result<T>, see result.h) instead of throwing. Statuses are
// cheap to copy in the OK case (empty message, small enum).
#ifndef QFIX_COMMON_STATUS_H_
#define QFIX_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace qfix {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  /// A caller-supplied argument is malformed or out of range.
  kInvalidArgument,
  /// A referenced entity (attribute, tuple, query index) does not exist.
  kNotFound,
  /// The MILP encoding admits no solution (e.g., contradictory complaints).
  kInfeasible,
  /// The LP relaxation is unbounded (encoding bug or missing bounds).
  kUnbounded,
  /// A resource budget (time limit, node limit) was exhausted.
  kResourceExhausted,
  /// The operation lost a race with a concurrent conflicting update
  /// (e.g. an append raced by a re-registration) and was rolled back;
  /// the caller may retry against the new state.
  kAborted,
  /// The requested operation is outside the supported query fragment.
  kUnsupported,
  /// An internal invariant was violated; indicates a library bug.
  kInternal,
};

/// Returns a human-readable name for a status code, e.g. "Infeasible".
std::string_view StatusCodeToString(StatusCode code);

/// The result of an operation that may fail. Immutable once constructed.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and diagnostic message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Named constructors, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unbounded(std::string msg) {
    return Status(StatusCode::kUnbounded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInfeasible() const { return code_ == StatusCode::kInfeasible; }
  bool IsUnbounded() const { return code_ == StatusCode::kUnbounded; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsUnsupported() const { return code_ == StatusCode::kUnsupported; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "<Code>: <message>" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace qfix

/// Propagates a non-OK status to the caller.
#define QFIX_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::qfix::Status _qfix_status = (expr);     \
    if (!_qfix_status.ok()) return _qfix_status; \
  } while (0)

#endif  // QFIX_COMMON_STATUS_H_
