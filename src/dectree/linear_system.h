// Dense linear least-squares solver for the DecTree SET-clause repair.
//
// Appendix A models SET-clause errors as a linear system: each matched
// tuple contributes one equation `expr(t_pre) = t_target.attr` in the
// unknown expression parameters. The system is usually overdetermined
// (many tuples, few parameters), so we solve the normal equations by
// Gaussian elimination with partial pivoting.
#ifndef QFIX_DECTREE_LINEAR_SYSTEM_H_
#define QFIX_DECTREE_LINEAR_SYSTEM_H_

#include <vector>

#include "common/result.h"

namespace qfix {
namespace dectree {

/// Solves min ||A x - b||_2 for x (A is rows x cols, row-major).
/// Returns InvalidArgument on shape mismatch and Infeasible when the
/// normal matrix is singular (underdetermined system).
Result<std::vector<double>> SolveLeastSquares(
    const std::vector<std::vector<double>>& a, const std::vector<double>& b);

/// Solves a square linear system A x = b by Gaussian elimination with
/// partial pivoting. Returns Infeasible when A is (numerically) singular.
Result<std::vector<double>> SolveSquare(std::vector<std::vector<double>> a,
                                        std::vector<double> b);

}  // namespace dectree
}  // namespace qfix

#endif  // QFIX_DECTREE_LINEAR_SYSTEM_H_
