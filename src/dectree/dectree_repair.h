// DecTree: the learning-based repair baseline of Appendix A.
//
// Limited by construction to a single corrupted UPDATE in the log (the
// appendix explains why the approach cannot extend further): the WHERE
// clause is re-learned with a decision tree over the pre-state, then the
// SET clause parameters are re-fit with a linear system over the matched
// tuples. Compared against QFix in Figure 10.
#ifndef QFIX_DECTREE_DECTREE_REPAIR_H_
#define QFIX_DECTREE_DECTREE_REPAIR_H_

#include "common/result.h"
#include "dectree/decision_tree.h"
#include "relational/database.h"
#include "relational/query.h"

namespace qfix {
namespace dectree {

struct DecTreeRepairResult {
  relational::Query repaired;
  /// Nodes in the learned tree (diagnostics).
  size_t tree_nodes = 0;
};

/// Repairs a single corrupted UPDATE `query`, given the state it ran on
/// (`pre`) and the true post state (`truth_post`, i.e. D*_1 = T_C(D_1)
/// under a complete complaint set).
///
/// Step 1 (WHERE): tuples are labeled true iff pre != truth_post and a
/// decision tree is trained on the pre-state features; the positive-leaf
/// rules become the repaired WHERE clause. Step 2 (SET): for each SET
/// clause, the expression parameters (term coefficients and the additive
/// constant) are re-fit by least squares over the tuples the new WHERE
/// matches. Structure (which attributes appear) is preserved.
Result<DecTreeRepairResult> RepairWithDecTree(
    const relational::Query& query, const relational::Database& pre,
    const relational::Database& truth_post,
    const DecisionTreeOptions& options = {});

}  // namespace dectree
}  // namespace qfix

#endif  // QFIX_DECTREE_DECTREE_REPAIR_H_
