#include "dectree/decision_tree.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace qfix {
namespace dectree {
namespace {

using relational::CmpOp;
using relational::Comparison;
using relational::LinearExpr;
using relational::Predicate;

double Entropy(size_t positives, size_t total) {
  if (total == 0 || positives == 0 || positives == total) return 0.0;
  double p = static_cast<double>(positives) / static_cast<double>(total);
  return -p * std::log2(p) - (1 - p) * std::log2(1 - p);
}

}  // namespace

DecisionTree DecisionTree::Train(const std::vector<Example>& examples,
                                 const DecisionTreeOptions& options) {
  DecisionTree tree;
  std::vector<Example> working = examples;
  if (!working.empty()) {
    tree.root_ = tree.Build(working, 0, working.size(), 0, options);
  }
  return tree;
}

int32_t DecisionTree::Build(std::vector<Example>& examples, size_t begin,
                            size_t end, size_t depth,
                            const DecisionTreeOptions& options) {
  QFIX_CHECK(begin < end);
  const size_t n = end - begin;
  size_t positives = 0;
  for (size_t i = begin; i < end; ++i) positives += examples[i].label;

  auto make_leaf = [&]() {
    Node leaf;
    leaf.is_leaf = true;
    leaf.label = positives * 2 >= n;  // majority, ties -> positive
    nodes_.push_back(leaf);
    return static_cast<int32_t>(nodes_.size() - 1);
  };

  if (positives == 0 || positives == n || n < options.min_samples_split ||
      depth >= options.max_depth) {
    return make_leaf();
  }

  const double parent_entropy = Entropy(positives, n);
  const size_t num_features = examples[begin].features.size();

  // Best split by gain ratio: scan candidate thresholds (midpoints of
  // consecutive distinct values) per attribute.
  double best_ratio = options.min_gain;
  size_t best_attr = 0;
  double best_threshold = 0.0;
  bool found = false;

  std::vector<std::pair<double, bool>> column(n);
  for (size_t attr = 0; attr < num_features; ++attr) {
    for (size_t i = 0; i < n; ++i) {
      column[i] = {examples[begin + i].features[attr],
                   examples[begin + i].label};
    }
    std::sort(column.begin(), column.end());
    size_t left_pos = 0;
    for (size_t i = 0; i + 1 < n; ++i) {
      left_pos += column[i].second;
      if (column[i].first == column[i + 1].first) continue;
      size_t left_n = i + 1;
      size_t right_n = n - left_n;
      size_t right_pos = positives - left_pos;
      double cond = (static_cast<double>(left_n) / n) *
                        Entropy(left_pos, left_n) +
                    (static_cast<double>(right_n) / n) *
                        Entropy(right_pos, right_n);
      double gain = parent_entropy - cond;
      // Split information (C4.5's normalization against many-way bias;
      // binary splits still benefit when partitions are lopsided).
      double split_info =
          Entropy(left_n, n);  // H(left_n/n, right_n/n) for binary split
      double ratio = split_info > 1e-12 ? gain / split_info : 0.0;
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_attr = attr;
        best_threshold = (column[i].first + column[i + 1].first) / 2.0;
        found = true;
      }
    }
  }
  if (!found) return make_leaf();

  // Partition in place around the chosen split.
  auto mid_it = std::partition(
      examples.begin() + begin, examples.begin() + end,
      [&](const Example& e) {
        return e.features[best_attr] <= best_threshold;
      });
  size_t mid = static_cast<size_t>(mid_it - examples.begin());
  if (mid == begin || mid == end) return make_leaf();  // numerical guard

  int32_t left = Build(examples, begin, mid, depth + 1, options);
  int32_t right = Build(examples, mid, end, depth + 1, options);
  Node node;
  node.is_leaf = false;
  node.attr = best_attr;
  node.threshold = best_threshold;
  node.left = left;
  node.right = right;
  nodes_.push_back(node);
  return static_cast<int32_t>(nodes_.size() - 1);
}

bool DecisionTree::Predict(const std::vector<double>& features) const {
  if (root_ < 0) return false;
  int32_t cur = root_;
  while (!nodes_[cur].is_leaf) {
    const Node& n = nodes_[cur];
    QFIX_CHECK(n.attr < features.size());
    cur = features[n.attr] <= n.threshold ? n.left : n.right;
  }
  return nodes_[cur].label;
}

void DecisionTree::CollectRules(int32_t node,
                                std::vector<Predicate>& path,
                                std::vector<Predicate>& rules,
                                size_t num_attrs) const {
  const Node& n = nodes_[node];
  if (n.is_leaf) {
    if (!n.label) return;
    if (path.empty()) {
      rules.push_back(Predicate::True());
    } else {
      rules.push_back(Predicate::And(path));
    }
    return;
  }
  path.push_back(Predicate::Atom(
      Comparison{LinearExpr::Attr(n.attr), CmpOp::kLe, n.threshold}));
  CollectRules(n.left, path, rules, num_attrs);
  path.back() = Predicate::Atom(
      Comparison{LinearExpr::Attr(n.attr), CmpOp::kGt, n.threshold});
  CollectRules(n.right, path, rules, num_attrs);
  path.pop_back();
}

relational::Predicate DecisionTree::ToPredicate(size_t num_attrs) const {
  std::vector<Predicate> rules;
  if (root_ >= 0) {
    std::vector<Predicate> path;
    CollectRules(root_, path, rules, num_attrs);
  }
  if (rules.empty()) {
    // No positive leaf: a never-true predicate (0 >= 1).
    return Predicate::Atom(
        Comparison{LinearExpr::Constant(0.0), CmpOp::kGe, 1.0});
  }
  return Predicate::Or(std::move(rules));
}

}  // namespace dectree
}  // namespace qfix
