#include "dectree/linear_system.h"

#include <cmath>

namespace qfix {
namespace dectree {

Result<std::vector<double>> SolveSquare(std::vector<std::vector<double>> a,
                                        std::vector<double> b) {
  const size_t n = b.size();
  if (a.size() != n) {
    return Status::InvalidArgument("matrix/vector size mismatch");
  }
  for (const auto& row : a) {
    if (row.size() != n) {
      return Status::InvalidArgument("matrix is not square");
    }
  }

  // Forward elimination with partial pivoting.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    if (std::fabs(a[pivot][col]) < 1e-10) {
      return Status::Infeasible("singular system");
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (size_t r = col + 1; r < n; ++r) {
      double factor = a[r][col] / a[col][col];
      if (factor == 0.0) continue;
      for (size_t c = col; c < n; ++c) a[r][c] -= factor * a[col][c];
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double v = b[i];
    for (size_t c = i + 1; c < n; ++c) v -= a[i][c] * x[c];
    x[i] = v / a[i][i];
  }
  return x;
}

Result<std::vector<double>> SolveLeastSquares(
    const std::vector<std::vector<double>>& a,
    const std::vector<double>& b) {
  const size_t rows = a.size();
  if (rows == 0 || rows != b.size()) {
    return Status::InvalidArgument("empty or mismatched system");
  }
  const size_t cols = a[0].size();
  for (const auto& row : a) {
    if (row.size() != cols) {
      return Status::InvalidArgument("ragged matrix");
    }
  }
  // Normal equations: (A'A) x = A'b.
  std::vector<std::vector<double>> ata(cols, std::vector<double>(cols, 0.0));
  std::vector<double> atb(cols, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t i = 0; i < cols; ++i) {
      atb[i] += a[r][i] * b[r];
      for (size_t j = i; j < cols; ++j) {
        ata[i][j] += a[r][i] * a[r][j];
      }
    }
  }
  for (size_t i = 0; i < cols; ++i) {
    for (size_t j = 0; j < i; ++j) ata[i][j] = ata[j][i];
  }
  return SolveSquare(std::move(ata), std::move(atb));
}

}  // namespace dectree
}  // namespace qfix
