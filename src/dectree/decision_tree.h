// C4.5-style decision tree over numeric attributes (Appendix A).
//
// The DecTree baseline repairs a WHERE clause by training a rule-based
// binary classifier on labeled tuples and reading the true-leaf paths
// back as a disjunction of conjunctive range predicates. This is the
// comparison system of the paper's Figure 10, built from scratch: binary
// splits on attribute thresholds chosen by gain ratio (information gain
// normalized by split entropy), with pre-pruning via minimum node size.
#ifndef QFIX_DECTREE_DECISION_TREE_H_
#define QFIX_DECTREE_DECISION_TREE_H_

#include <memory>
#include <vector>

#include "relational/predicate.h"

namespace qfix {
namespace dectree {

/// One training example: numeric features plus a boolean label.
struct Example {
  std::vector<double> features;
  bool label = false;
};

struct DecisionTreeOptions {
  /// Nodes with fewer examples become leaves (C4.5's pre-pruning).
  size_t min_samples_split = 2;
  size_t max_depth = 24;
  /// Minimum gain ratio for a split to be accepted.
  double min_gain = 1e-9;
};

/// A trained binary decision tree.
class DecisionTree {
 public:
  /// Trains on `examples` (gain-ratio splits, depth-first growth).
  static DecisionTree Train(const std::vector<Example>& examples,
                            const DecisionTreeOptions& options = {});

  /// Predicts the label for a feature vector.
  bool Predict(const std::vector<double>& features) const;

  /// Extracts the positive-leaf paths as a predicate: an OR over leaf
  /// rules, each an AND of `attr <= v` / `attr > v` atoms. Returns
  /// a never-matching predicate when the tree has no positive leaf
  /// (the paper's "high selectivity, low precision" failure mode).
  relational::Predicate ToPredicate(size_t num_attrs) const;

  /// Number of nodes (diagnostics).
  size_t NumNodes() const { return nodes_.size(); }

 private:
  struct Node {
    bool is_leaf = true;
    bool label = false;
    size_t attr = 0;
    double threshold = 0.0;  // go left if feature <= threshold
    int32_t left = -1;
    int32_t right = -1;
  };

  int32_t Build(std::vector<Example>& examples, size_t begin, size_t end,
                size_t depth, const DecisionTreeOptions& options);
  void CollectRules(int32_t node, std::vector<relational::Predicate>& path,
                    std::vector<relational::Predicate>& rules,
                    size_t num_attrs) const;

  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace dectree
}  // namespace qfix

#endif  // QFIX_DECTREE_DECISION_TREE_H_
