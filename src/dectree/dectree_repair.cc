#include "dectree/dectree_repair.h"

#include <cmath>

#include "dectree/linear_system.h"

namespace qfix {
namespace dectree {

using relational::Database;
using relational::LinearExpr;
using relational::Predicate;
using relational::Query;
using relational::QueryType;
using relational::SetClause;
using relational::Tuple;

Result<DecTreeRepairResult> RepairWithDecTree(
    const Query& query, const Database& pre, const Database& truth_post,
    const DecisionTreeOptions& options) {
  if (query.type() != QueryType::kUpdate) {
    return Status::Unsupported(
        "DecTree repairs single UPDATE queries only (Appendix A)");
  }
  if (pre.NumSlots() > truth_post.NumSlots()) {
    return Status::InvalidArgument("post state misses tuples of pre state");
  }
  const size_t num_attrs = pre.schema().num_attrs();

  // ---- Step 1: learn the WHERE clause. ----
  std::vector<Example> examples;
  examples.reserve(pre.NumSlots());
  for (size_t i = 0; i < pre.NumSlots(); ++i) {
    const Tuple& before = pre.slot(i);
    const Tuple& after = truth_post.slot(i);
    if (!before.alive || !after.alive) continue;
    bool changed = false;
    for (size_t a = 0; a < num_attrs && !changed; ++a) {
      changed = std::fabs(before.values[a] - after.values[a]) > 1e-9;
    }
    examples.push_back(Example{before.values, changed});
  }
  if (examples.empty()) {
    return Status::InvalidArgument("no live tuples to learn from");
  }
  DecisionTree tree = DecisionTree::Train(examples, options);
  Predicate where = tree.ToPredicate(num_attrs);

  // ---- Step 2: re-fit the SET clause parameters. ----
  // Unknowns per clause: one coefficient per existing expression term
  // plus the additive constant. Equations come from matched tuples.
  std::vector<SetClause> repaired_sets = query.set_clauses();
  for (SetClause& sc : repaired_sets) {
    const size_t num_terms = sc.expr.terms().size();
    const size_t unknowns = num_terms + 1;
    std::vector<std::vector<double>> rows;
    std::vector<double> rhs;
    for (size_t i = 0; i < pre.NumSlots(); ++i) {
      const Tuple& before = pre.slot(i);
      const Tuple& after = truth_post.slot(i);
      if (!before.alive || !after.alive) continue;
      if (!where.Eval(before.values)) continue;
      std::vector<double> row(unknowns, 0.0);
      for (size_t t = 0; t < num_terms; ++t) {
        row[t] = before.values[sc.expr.terms()[t].attr];
      }
      row[num_terms] = 1.0;  // additive constant
      rows.push_back(std::move(row));
      rhs.push_back(after.values[sc.attr]);
    }
    if (rows.empty()) continue;  // nothing matched: keep original params
    auto fit = SolveLeastSquares(rows, rhs);
    if (!fit.ok()) continue;  // singular (e.g. constant column): keep
    LinearExpr fitted;
    for (size_t t = 0; t < num_terms; ++t) {
      fitted.AddTerm(sc.expr.terms()[t].attr, (*fit)[t]);
    }
    fitted.set_constant((*fit)[num_terms]);
    sc.expr = std::move(fitted);
  }

  DecTreeRepairResult result{
      Query::Update(query.table(), std::move(repaired_sets),
                    std::move(where)),
      tree.NumNodes()};
  return result;
}

}  // namespace dectree
}  // namespace qfix
