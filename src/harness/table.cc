#include "harness/table.h"

#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/strings.h"

namespace qfix {
namespace harness {

Table::Table(std::vector<std::string> header)
    : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  QFIX_CHECK(cells.size() == header_.size())
      << "row arity " << cells.size() << " vs header " << header_.size();
  rows_.push_back(std::move(cells));
}

std::string Table::Cell(double v) {
  if (std::fabs(v - std::round(v)) < 1e-9 && std::fabs(v) < 1e12) {
    return StringPrintf("%.0f", v);
  }
  return StringPrintf("%.3f", v);
}

std::string Table::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (size_t c = 0; c < row.size(); ++c) {
      out += StringPrintf("%-*s", static_cast<int>(widths[c]) + 2,
                          row[c].c_str());
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += "\n";
    return out;
  };
  std::string out = render_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out += std::string(total > 2 ? total - 2 : total, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Table::ToCsv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  auto render = [&](const std::vector<std::string>& row) {
    std::string out;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
    return out;
  };
  std::string out = render(header_);
  for (const auto& row : rows_) out += render(row);
  return out;
}

}  // namespace harness
}  // namespace qfix
