#include "harness/loadgen.h"

#include <strings.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <utility>

#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/timer.h"
#include "service/client.h"

namespace qfix {
namespace harness {

namespace {

/// A send later than this after its scheduled slot counts as the
/// harness falling behind its own timetable.
constexpr double kBehindScheduleSeconds = 0.010;

/// Per-worker, per-tenant accumulator. Workers never share state while
/// running; the driver merges after join.
struct TenantAcc {
  uint64_t attempted = 0;
  ErrorClassCounts classes;
  LatencyHistogram latency;
};

struct WorkerAcc {
  std::vector<TenantAcc> tenants;
  uint64_t behind_schedule = 0;
};

/// Two-stage weighted pick: tenant by tenant weight, then one of the
/// tenant's templates by template weight.
struct Pick {
  size_t tenant = 0;
  const LoadRequestTemplate* request = nullptr;
};

class MixPicker {
 public:
  explicit MixPicker(const std::vector<LoadTenantSpec>& tenants)
      : tenants_(&tenants) {
    for (const LoadTenantSpec& t : tenants) {
      tenant_total_ += std::max(t.weight, 1);
      tenant_edges_.push_back(tenant_total_);
      long rt = 0;
      std::vector<long> edges;
      for (const LoadRequestTemplate& r : t.requests) {
        rt += std::max(r.weight, 1);
        edges.push_back(rt);
      }
      request_totals_.push_back(rt);
      request_edges_.push_back(std::move(edges));
    }
  }

  Pick operator()(std::mt19937_64& rng) const {
    Pick out;
    out.tenant = Draw(rng, tenant_edges_, tenant_total_);
    const size_t ri =
        Draw(rng, request_edges_[out.tenant], request_totals_[out.tenant]);
    out.request = &(*tenants_)[out.tenant].requests[ri];
    return out;
  }

 private:
  static size_t Draw(std::mt19937_64& rng, const std::vector<long>& edges,
                     long total) {
    std::uniform_int_distribution<long> dist(1, total);
    const long x = dist(rng);
    for (size_t i = 0; i < edges.size(); ++i) {
      if (x <= edges[i]) return i;
    }
    return edges.size() - 1;
  }

  const std::vector<LoadTenantSpec>* tenants_;
  long tenant_total_ = 0;
  std::vector<long> tenant_edges_;
  std::vector<long> request_totals_;
  std::vector<std::vector<long>> request_edges_;
};

void Classify(const Result<service::HttpResponse>& response,
              ErrorClassCounts* classes) {
  if (!response.ok()) {
    ++classes->transport;
    return;
  }
  const int status = response->status;
  if (status < 300) {
    ++classes->ok_2xx;
  } else if (status == 429) {
    ++classes->shed_429;
  } else if (status < 500) {
    ++classes->err_4xx;
  } else {
    ++classes->err_5xx;
  }
}

void WriteHistogramJson(const LatencyHistogram& h, JsonWriter* w) {
  w->BeginObject();
  w->Key("count");
  w->Uint(h.count());
  w->Key("mean");
  w->Double(h.mean() * 1e3);
  w->Key("p50");
  w->Double(h.Percentile(0.50) * 1e3);
  w->Key("p90");
  w->Double(h.Percentile(0.90) * 1e3);
  w->Key("p99");
  w->Double(h.Percentile(0.99) * 1e3);
  w->Key("p999");
  w->Double(h.Percentile(0.999) * 1e3);
  w->Key("max");
  w->Double(h.max() * 1e3);
  w->EndObject();
}

void WriteClassesJson(const ErrorClassCounts& c, JsonWriter* w) {
  w->BeginObject();
  w->Key("ok_2xx");
  w->Uint(c.ok_2xx);
  w->Key("shed_429");
  w->Uint(c.shed_429);
  w->Key("err_4xx");
  w->Uint(c.err_4xx);
  w->Key("err_5xx");
  w->Uint(c.err_5xx);
  w->Key("transport");
  w->Uint(c.transport);
  w->EndObject();
}

}  // namespace

void ErrorClassCounts::Merge(const ErrorClassCounts& other) {
  ok_2xx += other.ok_2xx;
  shed_429 += other.shed_429;
  err_4xx += other.err_4xx;
  err_5xx += other.err_5xx;
  transport += other.transport;
}

LoadResult RunLoad(const LoadOptions& options) {
  QFIX_CHECK(!options.tenants.empty()) << "load mix has no tenants";
  for (const LoadTenantSpec& t : options.tenants) {
    QFIX_CHECK(!t.requests.empty())
        << "tenant '" << t.name << "' has no request templates";
  }
  const int workers = std::max(options.concurrency, 1);
  const double duration = std::max(options.duration_seconds, 0.0);
  const MixPicker pick(options.tenants);

  std::vector<WorkerAcc> accs(static_cast<size_t>(workers));
  for (WorkerAcc& acc : accs) {
    acc.tenants.resize(options.tenants.size());
  }

  // Open loop: one shared timetable index. Workers race to claim the
  // next scheduled arrival; whoever claims slot k owns t_k = start +
  // k/rate and measures latency from it.
  std::atomic<uint64_t> next_arrival{0};
  const double rate =
      options.mode == LoadOptions::Mode::kOpen
          ? std::max(options.rate_per_second, 1e-3)
          : 0.0;

  const double start = MonotonicSeconds();
  const double deadline = start + duration;

  auto worker_body = [&](int index) {
    WorkerAcc& acc = accs[static_cast<size_t>(index)];
    std::mt19937_64 rng(options.seed * 0x9E3779B97F4A7C15ull +
                        static_cast<uint64_t>(index));
    service::ClientConnection conn(options.host, options.port);
    // Deterministic per-request ids: <prefix>-w<worker>-<seq>. The
    // server echoes the id, logs it on errors, and keys the retained
    // trace by it, so any outlier in this run's report is pullable
    // from /v1/debug/traces afterwards. A template carrying its own
    // X-Request-Id wins (it is sent verbatim AFTER the stamp, but the
    // stamp is skipped to keep exactly one id on the wire).
    uint64_t seq = 0;
    auto headers_for =
        [&](const LoadRequestTemplate& t)
        -> std::vector<std::pair<std::string, std::string>> {
      std::vector<std::pair<std::string, std::string>> out;
      bool has_id = false;
      for (const auto& h : t.headers) {
        if (strcasecmp(h.first.c_str(), "X-Request-Id") == 0) has_id = true;
        out.push_back(h);
      }
      if (!has_id && !options.request_id_prefix.empty()) {
        out.emplace_back(
            "X-Request-Id",
            StringPrintf("%s-w%d-%llu", options.request_id_prefix.c_str(),
                         index, static_cast<unsigned long long>(seq++)));
      }
      return out;
    };
    if (options.mode == LoadOptions::Mode::kClosed) {
      while (MonotonicSeconds() < deadline) {
        const Pick p = pick(rng);
        TenantAcc& ta = acc.tenants[p.tenant];
        ++ta.attempted;
        const double t0 = MonotonicSeconds();
        auto response =
            conn.Post(p.request->path, p.request->body,
                      options.request_timeout_seconds, headers_for(*p.request));
        Classify(response, &ta.classes);
        if (response.ok()) {
          ta.latency.Record(MonotonicSeconds() - t0);
        }
      }
      return;
    }
    // Open loop.
    for (;;) {
      const uint64_t k = next_arrival.fetch_add(1, std::memory_order_relaxed);
      const double scheduled = start + static_cast<double>(k) / rate;
      if (scheduled >= deadline) return;
      double now = MonotonicSeconds();
      if (scheduled > now) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(scheduled - now));
        now = MonotonicSeconds();
      } else if (now - scheduled > kBehindScheduleSeconds) {
        ++acc.behind_schedule;
      }
      const Pick p = pick(rng);
      TenantAcc& ta = acc.tenants[p.tenant];
      ++ta.attempted;
      auto response =
          conn.Post(p.request->path, p.request->body,
                    options.request_timeout_seconds, headers_for(*p.request));
      Classify(response, &ta.classes);
      if (response.ok()) {
        // Coordinated-omission corrected: measured from the scheduled
        // arrival, so time spent waiting for a free worker counts.
        ta.latency.Record(MonotonicSeconds() - scheduled);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads.emplace_back(worker_body, i);
  }
  for (std::thread& t : threads) t.join();
  const double elapsed = std::max(MonotonicSeconds() - start, 1e-9);

  LoadResult result;
  result.mode = options.mode;
  result.duration_seconds = elapsed;
  result.offered_rate = rate;
  result.tenants.resize(options.tenants.size());
  for (size_t ti = 0; ti < options.tenants.size(); ++ti) {
    result.tenants[ti].name = options.tenants[ti].name;
  }
  for (const WorkerAcc& acc : accs) {
    result.behind_schedule += acc.behind_schedule;
    for (size_t ti = 0; ti < acc.tenants.size(); ++ti) {
      const TenantAcc& ta = acc.tenants[ti];
      result.tenants[ti].attempted += ta.attempted;
      result.tenants[ti].classes.Merge(ta.classes);
      result.tenants[ti].latency.Merge(ta.latency);
    }
  }
  std::sort(result.tenants.begin(), result.tenants.end(),
            [](const TenantLoadResult& a, const TenantLoadResult& b) {
              return a.name < b.name;
            });
  for (const TenantLoadResult& t : result.tenants) {
    result.attempted += t.attempted;
    result.classes.Merge(t.classes);
    result.latency.Merge(t.latency);
  }
  result.achieved_rps = static_cast<double>(result.attempted) / elapsed;
  result.ok_rps = static_cast<double>(result.classes.ok_2xx) / elapsed;
  return result;
}

std::string LoadResultToJson(const LoadResult& result) {
  JsonWriter w;
  w.BeginObject();
  w.Key("mode");
  w.String(result.mode == LoadOptions::Mode::kOpen ? "open" : "closed");
  w.Key("duration_seconds");
  w.Double(result.duration_seconds);
  w.Key("offered_rate");
  w.Double(result.offered_rate);
  w.Key("achieved_rps");
  w.Double(result.achieved_rps);
  w.Key("ok_rps");
  w.Double(result.ok_rps);
  w.Key("behind_schedule");
  w.Uint(result.behind_schedule);
  w.Key("attempted");
  w.Uint(result.attempted);
  w.Key("classes");
  WriteClassesJson(result.classes, &w);
  w.Key("latency_ms");
  WriteHistogramJson(result.latency, &w);
  w.Key("tenants");
  w.BeginObject();
  for (const TenantLoadResult& t : result.tenants) {
    w.Key(t.name);
    w.BeginObject();
    w.Key("attempted");
    w.Uint(t.attempted);
    w.Key("classes");
    WriteClassesJson(t.classes, &w);
    w.Key("latency_ms");
    WriteHistogramJson(t.latency, &w);
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

}  // namespace harness
}  // namespace qfix
