// Aligned-column table printing for the benchmark binaries: every bench
// prints the same rows/series its paper figure plots.
#ifndef QFIX_HARNESS_TABLE_H_
#define QFIX_HARNESS_TABLE_H_

#include <string>
#include <vector>

namespace qfix {
namespace harness {

/// Collects rows of string cells and prints them with aligned columns.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; must match the header arity.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles to 3 decimals, integers bare.
  static std::string Cell(double v);
  static std::string Cell(const std::string& v) { return v; }

  /// Renders with a separator line under the header.
  std::string ToString() const;
  /// Prints to stdout.
  void Print() const;

  /// Renders as CSV (header + rows). Cells containing commas or quotes
  /// are quoted per RFC 4180 so downstream plotting tools parse them.
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace harness
}  // namespace qfix

#endif  // QFIX_HARNESS_TABLE_H_
