// HDR-style latency histogram: log-linear buckets with bounded relative
// error, constant-time Record(), and mergeable counts.
//
// The load harness (harness/loadgen.h, tools/qfix_load) records one
// sample per request from many worker threads; each worker owns its own
// histogram and the driver merges them at the end, so Record() needs no
// synchronization and costs a couple of shifts plus an increment.
//
// Layout: values are quantized to microseconds. The first 64 buckets
// are exact (one per microsecond); beyond that, each power-of-two range
// is split into 32 linear sub-buckets, so every bucket's width is at
// most 1/32 (~3.1%) of its value — percentiles carry that bounded
// relative error, never a sample-window cap like LatencyRecorder's
// ring. The top group covers past 2^40 us (~12 days), far beyond any
// request this harness will ever time.
#ifndef QFIX_HARNESS_HISTOGRAM_H_
#define QFIX_HARNESS_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qfix {
namespace harness {

class LatencyHistogram {
 public:
  LatencyHistogram();

  /// Records one sample, in seconds. Negative samples clamp to 0. NOT
  /// thread-safe: keep one histogram per recording thread and Merge().
  void Record(double seconds);

  /// Adds another histogram's samples into this one.
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  /// Exact (not quantized) extrema and mean over recorded samples;
  /// 0 when empty.
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

  /// Value (seconds) at quantile `q` in [0, 1]: the upper edge of the
  /// bucket holding the nearest-rank sample, clamped to the exact max.
  /// 0 when empty.
  double Percentile(double q) const;

  // Bucket layout, public so obs::DefaultLatencyBucketEdges() can derive
  // Prometheus histogram edges from the same quantization family.
  static constexpr int kLinearBuckets = 64;  // 1us-exact region
  static constexpr int kSubBuckets = 32;     // per power-of-two group
  static constexpr int kGroups = 35;         // covers up to 2^40 us

  /// Upper-edge value in microseconds of bucket `index`.
  static uint64_t UpperEdgeUs(size_t index);

 private:
  static size_t IndexFor(uint64_t us);

  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

}  // namespace harness
}  // namespace qfix

#endif  // QFIX_HARNESS_HISTOGRAM_H_
