// Reusable load-generation harness for the diagnosis service — the
// library under tools/qfix_load and tests/load_test.cc.
//
// Two arrival processes:
//   * Closed loop: `concurrency` workers, each a keep-alive connection
//     issuing its next request the moment the previous one answers.
//     Offered load adapts to the server (classic benchmark mode); the
//     steady-state in-flight count equals the worker count.
//   * Open loop: requests are scheduled on a fixed global timetable
//     t_k = start + k/rate regardless of how the server is doing —
//     the only honest way to measure an overloaded server. Latency is
//     measured from the SCHEDULED arrival, not the actual send
//     (coordinated-omission correction): a stalled worker's queueing
//     delay lands in the percentiles instead of silently thinning the
//     offered load.
//
// Traffic shape: a weighted tenant mix, each tenant a weighted set of
// request templates (register / diagnose / cached-hit replay / debug
// sleep — whatever the caller encodes as path+body). Results come back
// per error class (2xx / 429 shed / other 4xx / 5xx / transport) and
// as HDR-style latency histograms (p50..p99.9), overall and per
// tenant, with a JSON rendering compatible with bench_results/.
#ifndef QFIX_HARNESS_LOADGEN_H_
#define QFIX_HARNESS_LOADGEN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/histogram.h"

namespace qfix {
namespace harness {

/// One request template a tenant issues (POST `body` to `path`).
struct LoadRequestTemplate {
  std::string path;
  std::string body;
  /// Relative pick weight within the tenant's mix.
  int weight = 1;
  /// Extra headers sent verbatim with every instance of this template.
  /// An X-Request-Id here overrides the generator's per-request stamp.
  std::vector<std::pair<std::string, std::string>> headers;
};

/// One tenant's traffic: a share of the overall mix plus its own
/// request templates.
struct LoadTenantSpec {
  std::string name;
  /// Relative share of the overall request stream.
  int weight = 1;
  std::vector<LoadRequestTemplate> requests;
};

struct LoadOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  enum class Mode { kClosed, kOpen };
  Mode mode = Mode::kClosed;
  double duration_seconds = 10.0;
  /// Workers (each one keep-alive connection). Closed loop: the target
  /// in-flight count. Open loop: the senders draining the timetable —
  /// size it above rate * expected_latency or the harness itself falls
  /// behind schedule (reported, never hidden).
  int concurrency = 4;
  /// Open loop only: offered request rate over all tenants.
  double rate_per_second = 100.0;
  double request_timeout_seconds = 30.0;
  uint64_t seed = 1;
  /// Every request is stamped with a deterministic
  /// `X-Request-Id: <prefix>-w<worker>-<seq>` so a latency outlier in
  /// the load report correlates with the server's logs and its
  /// retained trace in /v1/debug/traces. Empty disables the stamp
  /// (templates may still carry their own).
  std::string request_id_prefix = "load";
  std::vector<LoadTenantSpec> tenants;
};

struct ErrorClassCounts {
  uint64_t ok_2xx = 0;
  /// Admission sheds — the ONLY error class an overloaded server is
  /// allowed to produce.
  uint64_t shed_429 = 0;
  uint64_t err_4xx = 0;  // 4xx other than 429
  uint64_t err_5xx = 0;
  /// Connect/send/recv/timeout failures (no HTTP status came back).
  uint64_t transport = 0;

  uint64_t total() const {
    return ok_2xx + shed_429 + err_4xx + err_5xx + transport;
  }
  void Merge(const ErrorClassCounts& other);
};

struct TenantLoadResult {
  std::string name;
  uint64_t attempted = 0;
  ErrorClassCounts classes;
  LatencyHistogram latency;
};

struct LoadResult {
  LoadOptions::Mode mode = LoadOptions::Mode::kClosed;
  /// Wall-clock the run actually took (>= the configured duration).
  double duration_seconds = 0.0;
  uint64_t attempted = 0;
  ErrorClassCounts classes;
  /// Overall latency; open loop measures from the scheduled arrival.
  LatencyHistogram latency;
  /// Per-tenant breakdown, sorted by name.
  std::vector<TenantLoadResult> tenants;
  /// Open loop: the configured timetable rate (0 for closed loop).
  double offered_rate = 0.0;
  /// Requests attempted / elapsed, and 2xx answered / elapsed.
  double achieved_rps = 0.0;
  double ok_rps = 0.0;
  /// Open loop: sends that left more than 10ms after their scheduled
  /// slot — nonzero means the HARNESS (rate vs concurrency) is the
  /// bottleneck and percentiles include self-inflicted queueing.
  uint64_t behind_schedule = 0;
};

/// Runs the load and blocks until the duration elapses and every
/// in-flight request settles. Tenants must be non-empty and each must
/// have at least one request template.
LoadResult RunLoad(const LoadOptions& options);

/// bench_results/-style JSON rendering (latencies in milliseconds).
std::string LoadResultToJson(const LoadResult& result);

}  // namespace harness
}  // namespace qfix

#endif  // QFIX_HARNESS_LOADGEN_H_
