#include "harness/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "relational/executor.h"

namespace qfix {
namespace harness {

namespace {

bool TuplesEqual(const relational::Tuple& a, const relational::Tuple& b,
                 double tol) {
  if (a.alive != b.alive) return false;
  if (!a.alive) return true;
  for (size_t i = 0; i < a.values.size(); ++i) {
    if (std::fabs(a.values[i] - b.values[i]) > tol) return false;
  }
  return true;
}

}  // namespace

RepairAccuracy EvaluateRepair(const relational::QueryLog& repaired_log,
                              const relational::Database& d0,
                              const relational::Database& dirty,
                              const relational::Database& truth,
                              double tol) {
  relational::Database fixed = relational::ExecuteLog(repaired_log, d0);
  QFIX_CHECK(fixed.NumSlots() == dirty.NumSlots());
  QFIX_CHECK(fixed.NumSlots() == truth.NumSlots());

  RepairAccuracy acc;
  for (size_t i = 0; i < fixed.NumSlots(); ++i) {
    const relational::Tuple& f = fixed.slot(i);
    const relational::Tuple& d = dirty.slot(i);
    const relational::Tuple& t = truth.slot(i);
    bool is_true_complaint = !TuplesEqual(d, t, tol);
    bool was_repaired = !TuplesEqual(f, d, tol);
    bool matches_truth = TuplesEqual(f, t, tol);
    acc.true_complaints += is_true_complaint;
    acc.repaired_tuples += was_repaired;
    acc.correct_repairs += was_repaired && matches_truth;
    acc.resolved_complaints += is_true_complaint && matches_truth;
  }
  acc.precision =
      acc.repaired_tuples > 0
          ? static_cast<double>(acc.correct_repairs) / acc.repaired_tuples
          : (acc.true_complaints == 0 ? 1.0 : 0.0);
  acc.recall = acc.true_complaints > 0
                   ? static_cast<double>(acc.resolved_complaints) /
                         acc.true_complaints
                   : 1.0;
  acc.f1 = (acc.precision + acc.recall) > 0
               ? 2.0 * acc.precision * acc.recall /
                     (acc.precision + acc.recall)
               : 0.0;
  return acc;
}

LatencyRecorder::LatencyRecorder(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {
  window_.reserve(capacity_);
}

void LatencyRecorder::Record(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  if (window_.size() < capacity_) {
    window_.push_back(seconds);
  } else {
    window_[next_] = seconds;
    next_ = (next_ + 1) % capacity_;
  }
  ++count_;
  if (seconds > max_) max_ = seconds;
}

LatencyRecorder::Snapshot LatencyRecorder::Take() const {
  std::vector<double> sorted;
  Snapshot out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sorted = window_;
    out.count = count_;
    out.max = max_;
  }
  if (sorted.empty()) return out;
  std::sort(sorted.begin(), sorted.end());
  auto pct = [&sorted](double p) {
    // Nearest-rank percentile over the window.
    size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
    return sorted[rank];
  };
  out.p50 = pct(0.50);
  out.p90 = pct(0.90);
  out.p99 = pct(0.99);
  return out;
}

}  // namespace harness
}  // namespace qfix
