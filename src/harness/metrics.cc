#include "harness/metrics.h"

#include <cmath>

#include "common/logging.h"
#include "relational/executor.h"

namespace qfix {
namespace harness {

namespace {

bool TuplesEqual(const relational::Tuple& a, const relational::Tuple& b,
                 double tol) {
  if (a.alive != b.alive) return false;
  if (!a.alive) return true;
  for (size_t i = 0; i < a.values.size(); ++i) {
    if (std::fabs(a.values[i] - b.values[i]) > tol) return false;
  }
  return true;
}

}  // namespace

RepairAccuracy EvaluateRepair(const relational::QueryLog& repaired_log,
                              const relational::Database& d0,
                              const relational::Database& dirty,
                              const relational::Database& truth,
                              double tol) {
  relational::Database fixed = relational::ExecuteLog(repaired_log, d0);
  QFIX_CHECK(fixed.NumSlots() == dirty.NumSlots());
  QFIX_CHECK(fixed.NumSlots() == truth.NumSlots());

  RepairAccuracy acc;
  for (size_t i = 0; i < fixed.NumSlots(); ++i) {
    const relational::Tuple& f = fixed.slot(i);
    const relational::Tuple& d = dirty.slot(i);
    const relational::Tuple& t = truth.slot(i);
    bool is_true_complaint = !TuplesEqual(d, t, tol);
    bool was_repaired = !TuplesEqual(f, d, tol);
    bool matches_truth = TuplesEqual(f, t, tol);
    acc.true_complaints += is_true_complaint;
    acc.repaired_tuples += was_repaired;
    acc.correct_repairs += was_repaired && matches_truth;
    acc.resolved_complaints += is_true_complaint && matches_truth;
  }
  acc.precision =
      acc.repaired_tuples > 0
          ? static_cast<double>(acc.correct_repairs) / acc.repaired_tuples
          : (acc.true_complaints == 0 ? 1.0 : 0.0);
  acc.recall = acc.true_complaints > 0
                   ? static_cast<double>(acc.resolved_complaints) /
                         acc.true_complaints
                   : 1.0;
  acc.f1 = (acc.precision + acc.recall) > 0
               ? 2.0 * acc.precision * acc.recall /
                     (acc.precision + acc.recall)
               : 0.0;
  return acc;
}

}  // namespace harness
}  // namespace qfix
