// Repair accuracy metrics (paper §7.1) and serving-side latency
// accounting.
//
// Precision: of the tuples the repair changed (relative to the dirty
// state), the fraction now equal to the truth. Recall: of the true
// complaint tuples (dirty != truth), the fraction the repair fixed.
// F1: their harmonic mean.
//
// LatencyRecorder backs the service's /v1/stats endpoint: a sliding
// window of recent request latencies with percentile snapshots, cheap
// enough to sit on every request path.
#ifndef QFIX_HARNESS_METRICS_H_
#define QFIX_HARNESS_METRICS_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "relational/database.h"
#include "relational/query.h"

namespace qfix {
namespace harness {

struct RepairAccuracy {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  /// Tuples the repaired log changed relative to the dirty state.
  size_t repaired_tuples = 0;
  /// Of those, tuples now exactly matching the truth.
  size_t correct_repairs = 0;
  /// Tuples where dirty differs from truth (the full complaint set).
  size_t true_complaints = 0;
  /// Of those, tuples the repair fixed.
  size_t resolved_complaints = 0;
};

/// Scores `repaired_log` by replaying it on `d0` and comparing tuple-wise
/// against `dirty` (= dirty_log(D0)) and `truth` (= clean_log(D0)).
RepairAccuracy EvaluateRepair(const relational::QueryLog& repaired_log,
                              const relational::Database& d0,
                              const relational::Database& dirty,
                              const relational::Database& truth,
                              double tol = 1e-6);

/// Thread-safe sliding-window latency tracker. Keeps the most recent
/// `capacity` samples in a ring (percentiles describe recent traffic,
/// not process history) plus lifetime count/max.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(size_t capacity = 4096);

  /// Records one sample (seconds). Thread-safe.
  void Record(double seconds);

  struct Snapshot {
    /// Lifetime sample count (not capped by the window).
    uint64_t count = 0;
    /// Percentiles over the retained window; 0 when no samples yet.
    double p50 = 0.0;
    double p90 = 0.0;
    double p99 = 0.0;
    /// Lifetime maximum.
    double max = 0.0;
  };

  /// Percentile snapshot of the current window. Thread-safe.
  Snapshot Take() const;

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  std::vector<double> window_;  // ring buffer, insertion order
  size_t next_ = 0;
  uint64_t count_ = 0;
  double max_ = 0.0;
};

}  // namespace harness
}  // namespace qfix

#endif  // QFIX_HARNESS_METRICS_H_
