// Repair accuracy metrics (paper §7.1).
//
// Precision: of the tuples the repair changed (relative to the dirty
// state), the fraction now equal to the truth. Recall: of the true
// complaint tuples (dirty != truth), the fraction the repair fixed.
// F1: their harmonic mean.
#ifndef QFIX_HARNESS_METRICS_H_
#define QFIX_HARNESS_METRICS_H_

#include "relational/database.h"
#include "relational/query.h"

namespace qfix {
namespace harness {

struct RepairAccuracy {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  /// Tuples the repaired log changed relative to the dirty state.
  size_t repaired_tuples = 0;
  /// Of those, tuples now exactly matching the truth.
  size_t correct_repairs = 0;
  /// Tuples where dirty differs from truth (the full complaint set).
  size_t true_complaints = 0;
  /// Of those, tuples the repair fixed.
  size_t resolved_complaints = 0;
};

/// Scores `repaired_log` by replaying it on `d0` and comparing tuple-wise
/// against `dirty` (= dirty_log(D0)) and `truth` (= clean_log(D0)).
RepairAccuracy EvaluateRepair(const relational::QueryLog& repaired_log,
                              const relational::Database& d0,
                              const relational::Database& dirty,
                              const relational::Database& truth,
                              double tol = 1e-6);

}  // namespace harness
}  // namespace qfix

#endif  // QFIX_HARNESS_METRICS_H_
