#include "harness/histogram.h"

#include <algorithm>
#include <cmath>

namespace qfix {
namespace harness {

LatencyHistogram::LatencyHistogram()
    : counts_(kLinearBuckets + static_cast<size_t>(kSubBuckets) * kGroups,
              0) {}

size_t LatencyHistogram::IndexFor(uint64_t us) {
  if (us < kLinearBuckets) return static_cast<size_t>(us);
  // Highest set bit; us >= 64 so msb >= 6.
  int msb = 63 - __builtin_clzll(us);
  // Group g holds [2^(5+g), 2^(6+g)) split into kSubBuckets linear
  // sub-buckets of width 2^g.
  int g = msb - 5;
  if (g > kGroups) g = kGroups;
  uint64_t sub = us >> g;  // in [kSubBuckets, 2*kSubBuckets) when g fits
  if (sub >= 2 * kSubBuckets) sub = 2 * kSubBuckets - 1;  // clamp overflow
  return static_cast<size_t>(kLinearBuckets) +
         static_cast<size_t>(g - 1) * kSubBuckets +
         static_cast<size_t>(sub - kSubBuckets);
}

uint64_t LatencyHistogram::UpperEdgeUs(size_t index) {
  if (index < kLinearBuckets) return static_cast<uint64_t>(index);
  size_t rest = index - kLinearBuckets;
  int g = static_cast<int>(rest / kSubBuckets) + 1;
  uint64_t sub = kSubBuckets + rest % kSubBuckets;
  return ((sub + 1) << g) - 1;
}

void LatencyHistogram::Record(double seconds) {
  if (seconds < 0.0 || !std::isfinite(seconds)) seconds = 0.0;
  uint64_t us = static_cast<uint64_t>(std::llround(seconds * 1e6));
  size_t index = IndexFor(us);
  if (index >= counts_.size()) index = counts_.size() - 1;
  ++counts_[index];
  if (count_ == 0 || seconds < min_) min_ = seconds;
  if (seconds > max_) max_ = seconds;
  sum_ += seconds;
  ++count_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  sum_ += other.sum_;
  count_ += other.count_;
}

double LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank over the quantized counts.
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * count_));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      double edge = static_cast<double>(UpperEdgeUs(i)) * 1e-6;
      return std::min(edge, max_);
    }
  }
  return max_;
}

}  // namespace harness
}  // namespace qfix
