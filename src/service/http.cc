#include "service/http.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace qfix {
namespace service {

namespace {

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Splits `head` into lines, accepting both CRLF and bare LF endings
// (curl and the tests send CRLF; hand-rolled smoke clients often LF).
std::vector<std::string_view> SplitHeadLines(std::string_view head) {
  std::vector<std::string_view> lines;
  size_t pos = 0;
  while (pos < head.size()) {
    size_t eol = head.find('\n', pos);
    if (eol == std::string_view::npos) eol = head.size();
    std::string_view line = head.substr(pos, eol - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    lines.push_back(line);
    pos = eol + 1;
  }
  return lines;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

std::string_view HttpRequest::path() const {
  std::string_view t = target;
  size_t q = t.find('?');
  return q == std::string_view::npos ? t : t.substr(0, q);
}

std::string_view HttpRequest::query() const {
  std::string_view t = target;
  size_t q = t.find('?');
  return q == std::string_view::npos ? std::string_view() : t.substr(q + 1);
}

bool HttpRequest::WantsKeepAlive() const {
  // Scan the Connection header as a comma-separated token list; a
  // `close` token always wins.
  bool saw_keep_alive = false;
  if (const std::string* header = FindHeader("Connection")) {
    std::string_view rest = *header;
    while (!rest.empty()) {
      size_t comma = rest.find(',');
      std::string_view token = Trim(rest.substr(0, comma));
      if (EqualsIgnoreCase(token, "close")) return false;
      if (EqualsIgnoreCase(token, "keep-alive")) saw_keep_alive = true;
      if (comma == std::string_view::npos) break;
      rest.remove_prefix(comma + 1);
    }
  }
  return version == "HTTP/1.1" || saw_keep_alive;
}

HttpRequestParser::State HttpRequestParser::Fail(int http_status,
                                                 std::string message) {
  state_ = State::kError;
  error_status_ = http_status;
  error_ = std::move(message);
  buffer_.clear();
  return state_;
}

HttpRequestParser::State HttpRequestParser::ParseHead() {
  // buffer_ holds the head (without the blank line) at this point.
  std::vector<std::string_view> lines = SplitHeadLines(buffer_);
  if (lines.empty() || lines[0].empty()) {
    return Fail(400, "empty request line");
  }
  std::string_view req_line = lines[0];
  size_t sp1 = req_line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos
                   ? std::string_view::npos
                   : req_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    return Fail(400, "malformed request line");
  }
  request_.method = std::string(req_line.substr(0, sp1));
  request_.target = std::string(req_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request_.version = std::string(req_line.substr(sp2 + 1));
  if (request_.method.empty() || request_.target.empty() ||
      request_.target[0] != '/') {
    return Fail(400, "malformed request target");
  }
  if (request_.version != "HTTP/1.1" && request_.version != "HTTP/1.0") {
    return Fail(400, "unsupported HTTP version: " + request_.version);
  }

  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    size_t colon = lines[i].find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return Fail(400, "malformed header line");
    }
    std::string_view name = Trim(lines[i].substr(0, colon));
    std::string_view value = Trim(lines[i].substr(colon + 1));
    request_.headers.emplace_back(std::string(name), std::string(value));
  }

  if (request_.FindHeader("Transfer-Encoding") != nullptr) {
    return Fail(501, "chunked transfer encoding is not supported");
  }
  body_expected_ = 0;
  if (const std::string* cl = request_.FindHeader("Content-Length")) {
    // Digits only: strtoull would silently wrap a leading '-' (and
    // accept '+'), turning "-1" into a huge value that reads as 413
    // instead of the 400 a malformed header deserves.
    if (cl->empty() ||
        !std::all_of(cl->begin(), cl->end(),
                     [](unsigned char c) { return c >= '0' && c <= '9'; })) {
      return Fail(400, "malformed Content-Length: " + *cl);
    }
    char* end = nullptr;
    unsigned long long n = std::strtoull(cl->c_str(), &end, 10);
    if (end != cl->c_str() + cl->size()) {
      return Fail(400, "malformed Content-Length: " + *cl);
    }
    if (n > limits_.max_body_bytes) {
      return Fail(413, StringPrintf("body of %llu bytes exceeds the %zu "
                                    "byte limit",
                                    n, limits_.max_body_bytes));
    }
    body_expected_ = static_cast<size_t>(n);
  }
  head_done_ = true;
  buffer_.clear();
  return State::kNeedMore;
}

void HttpRequestParser::Reset() {
  state_ = State::kNeedMore;
  buffer_.clear();
  leftover_.clear();
  head_done_ = false;
  body_expected_ = 0;
  request_ = HttpRequest();
  error_status_ = 400;
  error_.clear();
}

HttpRequestParser::State HttpRequestParser::Feed(std::string_view bytes) {
  if (state_ != State::kNeedMore) return state_;
  buffer_.append(bytes.data(), bytes.size());

  if (!head_done_) {
    // Find the blank line on CRLF or LF conventions — whichever comes
    // FIRST: an LF-terminated head may be followed in the same segment
    // by a body that happens to contain "\r\n\r\n".
    size_t crlf = buffer_.find("\r\n\r\n");
    size_t lf = buffer_.find("\n\n");
    size_t head_end;
    size_t sep;
    if (crlf != std::string::npos && (lf == std::string::npos || crlf < lf)) {
      head_end = crlf;
      sep = 4;
    } else {
      head_end = lf;
      sep = 2;
    }
    if (head_end == std::string::npos) {
      if (buffer_.size() > limits_.max_head_bytes) {
        return Fail(431, StringPrintf("request head exceeds %zu bytes",
                                      limits_.max_head_bytes));
      }
      return State::kNeedMore;
    }
    if (head_end > limits_.max_head_bytes) {
      return Fail(431, StringPrintf("request head exceeds %zu bytes",
                                    limits_.max_head_bytes));
    }
    std::string rest = buffer_.substr(head_end + sep);
    buffer_.resize(head_end);
    State s = ParseHead();
    if (s == State::kError) return s;
    buffer_ = std::move(rest);
  }

  if (buffer_.size() >= body_expected_) {
    request_.body = buffer_.substr(0, body_expected_);
    // Bytes beyond Content-Length are the start of a pipelined next
    // request on a kept-alive connection; hand them to the caller.
    leftover_ = buffer_.substr(body_expected_);
    buffer_.clear();
    state_ = State::kComplete;
  }
  return state_;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string HttpResponse::Serialize() const {
  std::string out = StringPrintf("HTTP/1.1 %d %s\r\n", status,
                                 ReasonPhrase(status));
  bool have_type = false;
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, "Content-Type")) have_type = true;
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  if (!have_type) out += "Content-Type: application/json\r\n";
  out += StringPrintf("Content-Length: %zu\r\n", body.size());
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += body;
  return out;
}

Result<HttpResponse> ParseHttpResponse(std::string_view raw) {
  size_t head_end = raw.find("\r\n\r\n");
  size_t sep = 4;
  if (head_end == std::string_view::npos) {
    head_end = raw.find("\n\n");
    sep = 2;
  }
  if (head_end == std::string_view::npos) {
    return Status::InvalidArgument("HTTP response has no header terminator");
  }
  std::vector<std::string_view> lines =
      SplitHeadLines(raw.substr(0, head_end));
  if (lines.empty()) {
    return Status::InvalidArgument("empty HTTP response head");
  }
  // Status line: HTTP/1.1 <code> <reason...>
  std::string_view status_line = lines[0];
  size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos ||
      status_line.substr(0, 5) != "HTTP/") {
    return Status::InvalidArgument("malformed HTTP status line");
  }
  std::string code_str(Trim(status_line.substr(sp1 + 1, 3)));
  char* end = nullptr;
  long code = std::strtol(code_str.c_str(), &end, 10);
  if (code_str.empty() || end != code_str.c_str() + code_str.size() ||
      code < 100 || code > 599) {
    return Status::InvalidArgument("malformed HTTP status code");
  }
  HttpResponse out;
  out.status = static_cast<int>(code);
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    size_t colon = lines[i].find(':');
    if (colon == std::string_view::npos) continue;
    out.headers.emplace_back(std::string(Trim(lines[i].substr(0, colon))),
                             std::string(Trim(lines[i].substr(colon + 1))));
  }
  out.body = std::string(raw.substr(head_end + sep));
  return out;
}

}  // namespace service
}  // namespace qfix
