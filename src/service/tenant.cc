#include "service/tenant.h"

#include <algorithm>

#include "common/timer.h"

namespace qfix {
namespace service {

std::string_view TenantOf(std::string_view dataset_name) {
  size_t slash = dataset_name.find('/');
  return slash == std::string_view::npos ? dataset_name
                                         : dataset_name.substr(0, slash);
}

TenantGovernor::TenantGovernor(Options options)
    : options_(options), clock_(&MonotonicSeconds) {
  options_.capacity = std::max(options_.capacity, 1);
  if (options_.activity_window_seconds < 0.0) {
    options_.activity_window_seconds = 0.0;
  }
}

void TenantGovernor::Ticket::Release() {
  if (governor_ != nullptr) {
    governor_->Release(acquired_);
    governor_ = nullptr;
    acquired_.clear();
  }
}

TenantGovernor::Tenant& TenantGovernor::TouchLocked(std::string_view tenant) {
  auto it = tenants_.find(std::string(tenant));
  if (it == tenants_.end()) {
    it = tenants_.emplace(std::string(tenant), std::make_unique<Tenant>())
             .first;
  }
  return *it->second;
}

bool TenantGovernor::ActiveLocked(const Tenant& t, double now) const {
  return t.inflight > 0 ||
         now - t.last_shed <= options_.activity_window_seconds;
}

int TenantGovernor::ShareLocked(int w, int total_w) const {
  if (total_w <= 0) return options_.capacity;
  long share = static_cast<long>(options_.capacity) * w / total_w;
  return static_cast<int>(std::max(share, 1L));
}

bool TenantGovernor::TryAcquire(
    const std::vector<std::pair<std::string, int>>& wants, Ticket* ticket) {
  // Settle any slots the ticket still holds before taking the lock
  // (Release() locks the same mutex).
  ticket->Release();
  std::lock_guard<std::mutex> lock(mu_);
  const double now = clock_();

  // Weight over the contending set: tenants with work in flight or a
  // live shed reservation, plus the tenants asking right now. Shares
  // are proportional slices of capacity over exactly this set.
  int total_weight = 0;
  for (const auto& [name, t] : tenants_) {
    (void)name;
    if (ActiveLocked(*t, now)) total_weight += t->weight;
  }
  for (const auto& [name, count] : wants) {
    (void)count;
    Tenant& t = TouchLocked(name);
    if (!ActiveLocked(t, now)) total_weight += t.weight;
  }

  // Cap counts at the gate capacity (an oversized batch waits for an
  // idle gate instead of shedding forever) and check global room.
  std::vector<std::pair<std::string, int>> capped;
  capped.reserve(wants.size());
  int requested_total = 0;
  for (const auto& [name, count] : wants) {
    int c = std::min(std::max(count, 0), options_.capacity);
    if (c == 0) continue;
    capped.emplace_back(name, c);
    requested_total += c;
  }
  if (requested_total == 0) return false;

  // Shedding stamps the reservation: a shed tenant is presumed to be
  // retrying, and its share stays spoken for — this is what keeps a
  // fast-retrying greedy tenant from racing a light one out of every
  // freed slot.
  auto shed = [&] {
    for (const auto& [name, c] : capped) {
      (void)c;
      TouchLocked(name).last_shed = now;
    }
    return false;
  };
  if (total_inflight_ + requested_total > options_.capacity) return shed();

  // Borrow check: admitting above a tenant's share must leave room for
  // every under-share contending tenant to still reach its own share.
  bool borrows = false;
  for (const auto& [name, c] : capped) {
    Tenant& t = TouchLocked(name);
    if (t.inflight + c > ShareLocked(t.weight, total_weight)) {
      borrows = true;
      break;
    }
  }
  if (borrows) {
    long committed = 0;  // sum of max(inflight', share) over contenders
    for (const auto& [name, t] : tenants_) {
      bool contending = ActiveLocked(*t, now);
      int after = t->inflight;
      for (const auto& [wname, c] : capped) {
        if (wname == name) {
          after += c;
          contending = true;
        }
      }
      if (!contending) continue;
      committed +=
          std::max(after, ShareLocked(t->weight, total_weight));
    }
    if (committed > options_.capacity) return shed();
  }

  for (const auto& [name, c] : capped) {
    TouchLocked(name).inflight += c;
  }
  total_inflight_ += requested_total;
  ticket->governor_ = this;
  ticket->acquired_ = std::move(capped);
  return true;
}

void TenantGovernor::Release(
    const std::vector<std::pair<std::string, int>>& acquired) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : acquired) {
    auto it = tenants_.find(name);
    if (it != tenants_.end()) {
      it->second->inflight = std::max(it->second->inflight - c, 0);
    }
    total_inflight_ = std::max(total_inflight_ - c, 0);
  }
}

int TenantGovernor::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_inflight_;
}

void TenantGovernor::SetWeight(std::string_view tenant, int weight) {
  std::lock_guard<std::mutex> lock(mu_);
  TouchLocked(tenant).weight = std::max(weight, 1);
}

void TenantGovernor::CountRequest(std::string_view tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  ++TouchLocked(tenant).requests;
}

void TenantGovernor::CountShed(std::string_view tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  ++TouchLocked(tenant).shed;
}

void TenantGovernor::CountCachedHit(std::string_view tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  ++TouchLocked(tenant).cached_hits;
}

void TenantGovernor::CountItems(std::string_view tenant, uint64_t items) {
  std::lock_guard<std::mutex> lock(mu_);
  TouchLocked(tenant).items += items;
}

void TenantGovernor::RecordLatency(std::string_view tenant, double seconds) {
  // LatencyRecorder is itself thread-safe; the governor lock only
  // guards the map lookup.
  harness::LatencyRecorder* recorder = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    recorder = &TouchLocked(tenant).latency;
  }
  recorder->Record(seconds);
}

std::vector<TenantGovernor::TenantStats> TenantGovernor::Snapshot() const {
  std::vector<TenantStats> out;
  std::lock_guard<std::mutex> lock(mu_);
  const double now = clock_();
  int total_weight = 0;
  for (const auto& [name, t] : tenants_) {
    (void)name;
    if (ActiveLocked(*t, now)) total_weight += t->weight;
  }
  out.reserve(tenants_.size());
  for (const auto& [name, t] : tenants_) {
    TenantStats s;
    s.name = name;
    s.weight = t->weight;
    s.share = ActiveLocked(*t, now) ? ShareLocked(t->weight, total_weight)
                                    : 0;
    s.inflight = t->inflight;
    s.requests = t->requests;
    s.shed_429 = t->shed;
    s.cached_hits = t->cached_hits;
    s.items = t->items;
    s.latency = t->latency.Take();
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const TenantStats& a, const TenantStats& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace service
}  // namespace qfix
