#include "service/registry.h"

#include <utility>

#include "common/strings.h"
#include "io/csv.h"
#include "io/snapshot.h"
#include "relational/executor.h"
#include "sql/parser.h"

namespace qfix {
namespace service {

namespace {

Status ValidateName(const std::string& name) {
  if (name.empty() || name.size() > 128) {
    return Status::InvalidArgument(
        "dataset name must be 1..128 bytes long");
  }
  for (char c : name) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u == 0x7F) {
      return Status::InvalidArgument(
          "dataset name must not contain whitespace or control bytes");
    }
  }
  return Status::OK();
}

Status RegistryFullError(size_t max_datasets) {
  return Status::ResourceExhausted(StringPrintf(
      "registry is full (%zu datasets); replace an existing name",
      max_datasets));
}

}  // namespace

Result<std::shared_ptr<const Dataset>> DatasetRegistry::Register(
    std::string name, std::string_view d0_text, std::string table_name,
    std::string_view log_sql) {
  QFIX_RETURN_IF_ERROR(ValidateName(name));

  // Reject a full registry before parsing: parse + replay of an
  // untrusted multi-megabyte body is the expensive part, and the cap
  // exists precisely to bound what rejected requests can cost. Checked
  // again at publish — a concurrent Register can still win the last
  // slot while this one parses.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (max_datasets_ > 0 && map_.size() >= max_datasets_ &&
        map_.find(name) == map_.end()) {
      return RegistryFullError(max_datasets_);
    }
  }

  auto ds = std::make_shared<Dataset>();
  ds->name = name;
  // Fresh identity per registration: a replaced name gets a new
  // version, which is what strands stale report-cache entries.
  ds->version = cache::NextSnapshotVersion();
  // Auto-detect the checkpoint format the CLI also accepts.
  if (d0_text.rfind("qfix-snapshot", 0) == 0) {
    QFIX_ASSIGN_OR_RETURN(ds->d0, io::ReadSnapshot(d0_text));
  } else {
    QFIX_ASSIGN_OR_RETURN(ds->d0,
                          io::DatabaseFromCsv(d0_text, std::move(table_name)));
  }
  QFIX_ASSIGN_OR_RETURN(ds->log, sql::ParseLog(log_sql, ds->d0.schema()));
  ds->dirty = relational::ExecuteLog(ds->log, ds->d0);

  std::shared_ptr<const Dataset> published = std::move(ds);
  bool replaced = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (max_datasets_ > 0 && map_.size() >= max_datasets_ &&
        map_.find(name) == map_.end()) {
      return RegistryFullError(max_datasets_);
    }
    auto [it, inserted] = map_.insert_or_assign(std::move(name), published);
    (void)it;
    replaced = !inserted;
  }
  // Eager invalidation outside the lock: version keys already make the
  // old entries unreachable, this just frees their bytes now.
  if (replaced && report_cache_ != nullptr) {
    report_cache_->EraseDataset(published->name);
  }
  return published;
}

bool DatasetRegistry::Erase(std::string_view name) {
  bool erased = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    erased = map_.erase(std::string(name)) > 0;
  }
  if (erased && report_cache_ != nullptr) {
    report_cache_->EraseDataset(name);
  }
  return erased;
}

std::shared_ptr<const Dataset> DatasetRegistry::Get(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(std::string(name));
  return it == map_.end() ? nullptr : it->second;
}

size_t DatasetRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace service
}  // namespace qfix
