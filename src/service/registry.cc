#include "service/registry.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "common/timer.h"
#include "io/csv.h"
#include "io/snapshot.h"
#include "relational/executor.h"
#include "sql/parser.h"

namespace qfix {
namespace service {

namespace {

Status ValidateName(const std::string& name) {
  if (name.empty() || name.size() > 128) {
    return Status::InvalidArgument(
        "dataset name must be 1..128 bytes long");
  }
  for (char c : name) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u == 0x7F) {
      return Status::InvalidArgument(
          "dataset name must not contain whitespace or control bytes");
    }
  }
  return Status::OK();
}

Status RegistryFullError(size_t max_datasets) {
  return Status::ResourceExhausted(StringPrintf(
      "registry is full (%zu datasets); replace an existing name",
      max_datasets));
}

/// Fixed per-object overheads folded into the estimate: vector
/// headers, shared_ptr control block, map/list nodes, string storage.
constexpr size_t kPerTupleOverhead = 48;
constexpr size_t kPerQueryOverhead = 256;
constexpr size_t kPerDatasetOverhead = 512;

size_t DatabaseBytes(const relational::Database& db) {
  return db.NumSlots() *
         (db.schema().num_attrs() * sizeof(double) + kPerTupleOverhead);
}

}  // namespace

size_t ApproxDatasetBytes(const Dataset& dataset) {
  return kPerDatasetOverhead + dataset.name.size() +
         DatabaseBytes(dataset.d0()) + DatabaseBytes(dataset.dirty) +
         dataset.log.size() * kPerQueryOverhead;
}

bool DatasetRegistry::PinnedLocked(Entry& entry) {
  if (entry.dataset.use_count() > 1) return true;
  auto& lineage = entry.lineage;
  lineage.erase(std::remove_if(lineage.begin(), lineage.end(),
                               [](const std::weak_ptr<const Dataset>& w) {
                                 return w.expired();
                               }),
                lineage.end());
  return !lineage.empty();
}

DatasetRegistry::DatasetRegistry(RegistryOptions options)
    : options_(options), clock_(&MonotonicSeconds) {}

void DatasetRegistry::SetClockForTest(std::function<double()> clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = std::move(clock);
}

double DatasetRegistry::NowLocked() const { return clock_(); }

void DatasetRegistry::TouchLocked(Entry& entry) const {
  entry.last_used = NowLocked();
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

void DatasetRegistry::EvictLocked(std::string_view keep,
                                  std::vector<std::string>* evicted) {
  const double now = NowLocked();
  // TTL first: idle entries go regardless of byte pressure. Walk from
  // the LRU tail — recency order is also idle-time order.
  if (options_.ttl_seconds > 0.0) {
    for (auto it = lru_.rbegin(); it != lru_.rend();) {
      auto entry_it = map_.find(*it);
      ++it;
      if (entry_it == map_.end()) continue;
      Entry& entry = entry_it->second;
      if (now - entry.last_used < options_.ttl_seconds) break;  // rest newer
      if (entry_it->first == keep || PinnedLocked(entry)) continue;
      evicted->push_back(entry_it->first);
      bytes_ -= std::min(bytes_, entry.bytes);
      // `it` already advanced past the node being unlinked.
      lru_.erase(entry.lru_it);
      map_.erase(entry_it);
      ++ttl_evictions_;
      it = lru_.rbegin();  // restart: erase may invalidate the walk
    }
  }
  // LRU byte pressure: evict the coldest unpinned entries until the
  // budget fits. Pinned entries are skipped — if everything left is
  // pinned the registry runs over budget rather than yank a snapshot's
  // name mid-diagnosis.
  if (options_.max_bytes > 0) {
    auto it = lru_.rbegin();
    while (bytes_ > options_.max_bytes && it != lru_.rend()) {
      auto entry_it = map_.find(*it);
      ++it;
      if (entry_it == map_.end()) continue;
      Entry& entry = entry_it->second;
      if (entry_it->first == keep || PinnedLocked(entry)) continue;
      evicted->push_back(entry_it->first);
      bytes_ -= std::min(bytes_, entry.bytes);
      lru_.erase(entry.lru_it);
      map_.erase(entry_it);
      ++evictions_;
      it = lru_.rbegin();
    }
  }
}

Result<std::shared_ptr<const Dataset>> DatasetRegistry::Register(
    std::string name, std::string_view d0_text, std::string table_name,
    std::string_view log_sql) {
  QFIX_RETURN_IF_ERROR(ValidateName(name));

  // Reject a full registry before parsing: parse + replay of an
  // untrusted multi-megabyte body is the expensive part, and the cap
  // exists precisely to bound what rejected requests can cost. Checked
  // again at publish — a concurrent Register can still win the last
  // slot while this one parses.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.max_datasets > 0 && map_.size() >= options_.max_datasets &&
        map_.find(name) == map_.end()) {
      return RegistryFullError(options_.max_datasets);
    }
  }

  auto ds = std::make_shared<Dataset>();
  ds->name = name;
  // Fresh identity per registration: a replaced name gets a new
  // version, which is what strands stale report-cache entries. The
  // root anchors chunk prefix signatures for the append lineage.
  ds->version = cache::NextSnapshotVersion();
  ds->root = ds->version;
  // Auto-detect the checkpoint format the CLI also accepts.
  relational::Database d0;
  if (d0_text.rfind("qfix-snapshot", 0) == 0) {
    QFIX_ASSIGN_OR_RETURN(d0, io::ReadSnapshot(d0_text));
  } else {
    QFIX_ASSIGN_OR_RETURN(d0,
                          io::DatabaseFromCsv(d0_text, std::move(table_name)));
  }
  QFIX_ASSIGN_OR_RETURN(ds->log, sql::ParseLog(log_sql, d0.schema()));
  ds->dirty = relational::ExecuteLog(ds->log, d0);
  ds->d0_state = std::make_shared<const relational::Database>(std::move(d0));
  // Seal the registered log into chunk 0 right away (empty mutable
  // tail): complaint windows diagnosed before the first append key on
  // this chunk's prefix signature (cache::WindowSignature) instead of a
  // version-salted one, so the FIRST append already preserves every
  // report it cannot observe — not just the second and later ones.
  if (!ds->log.empty()) {
    ds->chunks.push_back(ingest::SealChunk(
        ds->log, 0, ds->log.size(), ds->d0().schema().num_attrs(),
        ds->d0().NumSlots(), ingest::EmptyPrefixSig(ds->root)));
  }

  std::shared_ptr<const Dataset> published = std::move(ds);
  const size_t new_bytes = ApproxDatasetBytes(*published);
  bool replaced = false;
  std::vector<std::string> evicted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(name);
    if (it == map_.end()) {
      if (options_.max_datasets > 0 &&
          map_.size() >= options_.max_datasets) {
        return RegistryFullError(options_.max_datasets);
      }
      lru_.push_front(name);
      Entry entry;
      entry.dataset = published;
      entry.bytes = new_bytes;
      entry.lru_it = lru_.begin();
      entry.last_used = NowLocked();
      it = map_.emplace(std::move(name), std::move(entry)).first;
      bytes_ += new_bytes;
    } else {
      replaced = true;
      bytes_ -= std::min(bytes_, it->second.bytes);
      it->second.dataset = published;
      it->second.bytes = new_bytes;
      bytes_ += new_bytes;
      // Re-registration starts a fresh lineage (new root): superseded
      // versions of the old root no longer pin the name — in-flight
      // readers keep their own references alive regardless.
      it->second.lineage.clear();
      TouchLocked(it->second);
    }
    EvictLocked(/*keep=*/it->first, &evicted);
  }
  // Eager invalidation outside the lock: version keys already make the
  // old entries unreachable, this just frees their bytes now.
  if (replaced) {
    if (report_cache_ != nullptr) report_cache_->EraseDataset(published->name);
    if (encoding_cache_ != nullptr) {
      encoding_cache_->EraseDataset(published->name);
    }
  }
  for (const std::string& victim : evicted) {
    if (report_cache_ != nullptr) report_cache_->EraseDataset(victim);
    if (encoding_cache_ != nullptr) encoding_cache_->EraseDataset(victim);
  }
  return published;
}

Result<std::shared_ptr<const Dataset>> DatasetRegistry::Append(
    std::string_view name, std::string_view log_sql, size_t max_queries) {
  // Appends serialize with each other (they are cheap — O(N_D + tail));
  // publish below is then a plain compare-against-base. Register is NOT
  // serialized with this: a re-registration racing the parse wins and
  // the append aborts cleanly.
  std::lock_guard<std::mutex> append_lock(append_mu_);
  std::shared_ptr<const Dataset> base;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(std::string(name));
    if (it == map_.end()) {
      return Status::NotFound(
          StringPrintf("no dataset named '%.*s'",
                       static_cast<int>(name.size()), name.data()));
    }
    base = it->second.dataset;
  }

  // Parse outside the lock against the base schema. Any failure from
  // here on leaves the registered version untouched — the derived
  // dataset is built on the side and only swapped in at publish.
  QFIX_ASSIGN_OR_RETURN(relational::QueryLog tail,
                        sql::ParseLog(log_sql, base->d0().schema()));
  if (tail.empty()) {
    return Status::InvalidArgument("append contains no queries");
  }
  if (max_queries > 0 && tail.size() > max_queries) {
    return Status::ResourceExhausted(StringPrintf(
        "append of %zu queries exceeds the per-append cap (%zu)",
        tail.size(), max_queries));
  }
  cache::Snapshot derived =
      cache::AppendSnapshot(cache::Snapshot(base), std::move(tail));
  std::shared_ptr<const Dataset> published = derived.dataset();
  const size_t new_bytes = ApproxDatasetBytes(*published);

  std::vector<std::string> evicted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(std::string(name));
    if (it == map_.end() || it->second.dataset != base) {
      return Status::Aborted(StringPrintf(
          "dataset '%.*s' was re-registered or removed during the append",
          static_cast<int>(name.size()), name.data()));
    }
    Entry& entry = it->second;
    // The superseded head may still back in-flight solves; as long as
    // one of them holds it, the whole chunk-sharing lineage pins the
    // name against eviction.
    entry.lineage.push_back(base);
    bytes_ -= std::min(bytes_, entry.bytes);
    entry.dataset = published;
    entry.bytes = new_bytes;
    bytes_ += new_bytes;
    ++appends_;
    TouchLocked(entry);
    EvictLocked(/*keep=*/it->first, &evicted);
  }

  // Warm the encoding cache for free: the replay state after ALL
  // sealed chunks of the new version is exactly the base's dirty state
  // (the appended queries are the new tail). Stored as a Clone so the
  // cache never pins the superseded dataset.
  if (encoding_cache_ != nullptr && !published->chunks.empty()) {
    encoding_cache_->Put(
        published->name, published->chunks.back()->prefix_sig,
        std::make_shared<const relational::Database>(base->dirty.Clone()));
  }
  // Deliberately NO report-cache invalidation for `name`: reports whose
  // complaint window predates the append stay servable — their
  // prefix-aware keys (cache::WindowSignature) are untouched by design.
  for (const std::string& victim : evicted) {
    if (report_cache_ != nullptr) report_cache_->EraseDataset(victim);
    if (encoding_cache_ != nullptr) encoding_cache_->EraseDataset(victim);
  }
  return published;
}

bool DatasetRegistry::Erase(std::string_view name) {
  bool erased = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(std::string(name));
    if (it != map_.end()) {
      bytes_ -= std::min(bytes_, it->second.bytes);
      lru_.erase(it->second.lru_it);
      map_.erase(it);
      erased = true;
    }
  }
  if (erased) {
    if (report_cache_ != nullptr) report_cache_->EraseDataset(name);
    if (encoding_cache_ != nullptr) encoding_cache_->EraseDataset(name);
  }
  return erased;
}

std::shared_ptr<const Dataset> DatasetRegistry::Get(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(std::string(name));
  if (it == map_.end()) return nullptr;
  TouchLocked(it->second);
  return it->second.dataset;
}

size_t DatasetRegistry::SweepExpired() {
  std::vector<std::string> evicted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.ttl_seconds <= 0.0) return 0;
    // Byte pressure is Register's job; this entry point only ages out.
    size_t saved_max_bytes = options_.max_bytes;
    options_.max_bytes = 0;
    EvictLocked(/*keep=*/"", &evicted);
    options_.max_bytes = saved_max_bytes;
  }
  for (const std::string& victim : evicted) {
    if (report_cache_ != nullptr) report_cache_->EraseDataset(victim);
    if (encoding_cache_ != nullptr) encoding_cache_->EraseDataset(victim);
  }
  return evicted.size();
}

size_t DatasetRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

DatasetRegistry::Stats DatasetRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  out.datasets = map_.size();
  out.bytes = bytes_;
  out.capacity_bytes = options_.max_bytes;
  out.evictions = evictions_;
  out.ttl_evictions = ttl_evictions_;
  out.appends = appends_;
  for (const auto& kv : map_) {
    out.chunks += kv.second.dataset->chunks.size();
  }
  return out;
}

}  // namespace service
}  // namespace qfix
