#include "service/registry.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "common/timer.h"
#include "io/csv.h"
#include "io/snapshot.h"
#include "relational/executor.h"
#include "sql/parser.h"

namespace qfix {
namespace service {

namespace {

Status ValidateName(const std::string& name) {
  if (name.empty() || name.size() > 128) {
    return Status::InvalidArgument(
        "dataset name must be 1..128 bytes long");
  }
  for (char c : name) {
    unsigned char u = static_cast<unsigned char>(c);
    if (u <= 0x20 || u == 0x7F) {
      return Status::InvalidArgument(
          "dataset name must not contain whitespace or control bytes");
    }
  }
  return Status::OK();
}

Status RegistryFullError(size_t max_datasets) {
  return Status::ResourceExhausted(StringPrintf(
      "registry is full (%zu datasets); replace an existing name",
      max_datasets));
}

/// Fixed per-object overheads folded into the estimate: vector
/// headers, shared_ptr control block, map/list nodes, string storage.
constexpr size_t kPerTupleOverhead = 48;
constexpr size_t kPerQueryOverhead = 256;
constexpr size_t kPerDatasetOverhead = 512;

size_t DatabaseBytes(const relational::Database& db) {
  return db.NumSlots() *
         (db.schema().num_attrs() * sizeof(double) + kPerTupleOverhead);
}

}  // namespace

size_t ApproxDatasetBytes(const Dataset& dataset) {
  return kPerDatasetOverhead + dataset.name.size() +
         DatabaseBytes(dataset.d0) + DatabaseBytes(dataset.dirty) +
         dataset.log.size() * kPerQueryOverhead;
}

DatasetRegistry::DatasetRegistry(RegistryOptions options)
    : options_(options), clock_(&MonotonicSeconds) {}

void DatasetRegistry::SetClockForTest(std::function<double()> clock) {
  std::lock_guard<std::mutex> lock(mu_);
  clock_ = std::move(clock);
}

double DatasetRegistry::NowLocked() const { return clock_(); }

void DatasetRegistry::TouchLocked(Entry& entry) const {
  entry.last_used = NowLocked();
  lru_.splice(lru_.begin(), lru_, entry.lru_it);
}

void DatasetRegistry::EvictLocked(std::string_view keep,
                                  std::vector<std::string>* evicted) {
  const double now = NowLocked();
  // TTL first: idle entries go regardless of byte pressure. Walk from
  // the LRU tail — recency order is also idle-time order.
  if (options_.ttl_seconds > 0.0) {
    for (auto it = lru_.rbegin(); it != lru_.rend();) {
      auto entry_it = map_.find(*it);
      ++it;
      if (entry_it == map_.end()) continue;
      Entry& entry = entry_it->second;
      if (now - entry.last_used < options_.ttl_seconds) break;  // rest newer
      if (entry_it->first == keep || PinnedLocked(entry)) continue;
      evicted->push_back(entry_it->first);
      bytes_ -= std::min(bytes_, entry.bytes);
      // `it` already advanced past the node being unlinked.
      lru_.erase(entry.lru_it);
      map_.erase(entry_it);
      ++ttl_evictions_;
      it = lru_.rbegin();  // restart: erase may invalidate the walk
    }
  }
  // LRU byte pressure: evict the coldest unpinned entries until the
  // budget fits. Pinned entries are skipped — if everything left is
  // pinned the registry runs over budget rather than yank a snapshot's
  // name mid-diagnosis.
  if (options_.max_bytes > 0) {
    auto it = lru_.rbegin();
    while (bytes_ > options_.max_bytes && it != lru_.rend()) {
      auto entry_it = map_.find(*it);
      ++it;
      if (entry_it == map_.end()) continue;
      Entry& entry = entry_it->second;
      if (entry_it->first == keep || PinnedLocked(entry)) continue;
      evicted->push_back(entry_it->first);
      bytes_ -= std::min(bytes_, entry.bytes);
      lru_.erase(entry.lru_it);
      map_.erase(entry_it);
      ++evictions_;
      it = lru_.rbegin();
    }
  }
}

Result<std::shared_ptr<const Dataset>> DatasetRegistry::Register(
    std::string name, std::string_view d0_text, std::string table_name,
    std::string_view log_sql) {
  QFIX_RETURN_IF_ERROR(ValidateName(name));

  // Reject a full registry before parsing: parse + replay of an
  // untrusted multi-megabyte body is the expensive part, and the cap
  // exists precisely to bound what rejected requests can cost. Checked
  // again at publish — a concurrent Register can still win the last
  // slot while this one parses.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.max_datasets > 0 && map_.size() >= options_.max_datasets &&
        map_.find(name) == map_.end()) {
      return RegistryFullError(options_.max_datasets);
    }
  }

  auto ds = std::make_shared<Dataset>();
  ds->name = name;
  // Fresh identity per registration: a replaced name gets a new
  // version, which is what strands stale report-cache entries.
  ds->version = cache::NextSnapshotVersion();
  // Auto-detect the checkpoint format the CLI also accepts.
  if (d0_text.rfind("qfix-snapshot", 0) == 0) {
    QFIX_ASSIGN_OR_RETURN(ds->d0, io::ReadSnapshot(d0_text));
  } else {
    QFIX_ASSIGN_OR_RETURN(ds->d0,
                          io::DatabaseFromCsv(d0_text, std::move(table_name)));
  }
  QFIX_ASSIGN_OR_RETURN(ds->log, sql::ParseLog(log_sql, ds->d0.schema()));
  ds->dirty = relational::ExecuteLog(ds->log, ds->d0);

  std::shared_ptr<const Dataset> published = std::move(ds);
  const size_t new_bytes = ApproxDatasetBytes(*published);
  bool replaced = false;
  std::vector<std::string> evicted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(name);
    if (it == map_.end()) {
      if (options_.max_datasets > 0 &&
          map_.size() >= options_.max_datasets) {
        return RegistryFullError(options_.max_datasets);
      }
      lru_.push_front(name);
      Entry entry;
      entry.dataset = published;
      entry.bytes = new_bytes;
      entry.lru_it = lru_.begin();
      entry.last_used = NowLocked();
      it = map_.emplace(std::move(name), std::move(entry)).first;
      bytes_ += new_bytes;
    } else {
      replaced = true;
      bytes_ -= std::min(bytes_, it->second.bytes);
      it->second.dataset = published;
      it->second.bytes = new_bytes;
      bytes_ += new_bytes;
      TouchLocked(it->second);
    }
    EvictLocked(/*keep=*/it->first, &evicted);
  }
  // Eager invalidation outside the lock: version keys already make the
  // old entries unreachable, this just frees their bytes now.
  if (report_cache_ != nullptr) {
    if (replaced) report_cache_->EraseDataset(published->name);
    for (const std::string& victim : evicted) {
      report_cache_->EraseDataset(victim);
    }
  }
  return published;
}

bool DatasetRegistry::Erase(std::string_view name) {
  bool erased = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(std::string(name));
    if (it != map_.end()) {
      bytes_ -= std::min(bytes_, it->second.bytes);
      lru_.erase(it->second.lru_it);
      map_.erase(it);
      erased = true;
    }
  }
  if (erased && report_cache_ != nullptr) {
    report_cache_->EraseDataset(name);
  }
  return erased;
}

std::shared_ptr<const Dataset> DatasetRegistry::Get(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(std::string(name));
  if (it == map_.end()) return nullptr;
  TouchLocked(it->second);
  return it->second.dataset;
}

size_t DatasetRegistry::SweepExpired() {
  std::vector<std::string> evicted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.ttl_seconds <= 0.0) return 0;
    // Byte pressure is Register's job; this entry point only ages out.
    size_t saved_max_bytes = options_.max_bytes;
    options_.max_bytes = 0;
    EvictLocked(/*keep=*/"", &evicted);
    options_.max_bytes = saved_max_bytes;
  }
  if (report_cache_ != nullptr) {
    for (const std::string& victim : evicted) {
      report_cache_->EraseDataset(victim);
    }
  }
  return evicted.size();
}

size_t DatasetRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

DatasetRegistry::Stats DatasetRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats out;
  out.datasets = map_.size();
  out.bytes = bytes_;
  out.capacity_bytes = options_.max_bytes;
  out.evictions = evictions_;
  out.ttl_evictions = ttl_evictions_;
  return out;
}

}  // namespace service
}  // namespace qfix
