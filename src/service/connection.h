// Connection: the per-socket HTTP state machine that runs on an
// EventLoop. One instance per accepted TCP connection, owned by the
// server's loop shard, touched only on that loop's thread.
//
// States:
//   kReading     -> EPOLLIN armed; bytes feed the incremental
//                   HttpRequestParser. Idle/read deadlines on the timer
//                   wheel (quiet close when a kept-alive connection
//                   idles out; 408 when a started request stalls).
//   kDispatching -> a complete request was handed to the host. Cheap
//                   GETs answer inline; blocking handlers are offloaded
//                   to a worker pool and complete by posting back onto
//                   the loop (CompleteDispatch). Read interest is off.
//   kWriting     -> the serialized response drains through nonblocking
//                   send(MSG_NOSIGNAL); EPOLLOUT only when the socket
//                   buffer fills, with the write deadline on the wheel
//                   so a non-reading peer cannot pin the connection.
//   kDraining    -> graceful close: SHUT_WR, then briefly read-drain so
//                   the last response and FIN deliver before close()
//                   (closing with unread request bytes would RST and
//                   could destroy the queued response).
//   kClosed      -> fd closed. If a dispatched handler is still in
//                   flight the object lingers as a zombie until the
//                   completion arrives, then the host reaps it.
//
// Keep-alive/pipelining: after a response, leftover bytes from the
// parser (TakeLeftover) seed the next request, so pipelined requests
// are served back-to-back without waiting for readiness.
#ifndef QFIX_SERVICE_CONNECTION_H_
#define QFIX_SERVICE_CONNECTION_H_

#include <cstdint>
#include <functional>
#include <string>

#include "service/event_loop.h"
#include "service/http.h"

namespace qfix {
namespace service {

class Connection;

/// What a Connection needs from the server. Implemented by
/// DiagnosisServer; all methods must be callable from any loop thread.
class ConnectionHost {
 public:
  /// Immutable per-connection policy, snapshotted from ServerOptions.
  struct Config {
    double read_timeout_seconds = 10.0;
    double write_timeout_seconds = 10.0;
    double idle_timeout_seconds = 5.0;
    int max_requests_per_conn = 100;
    HttpLimits http;
  };

  virtual ~ConnectionHost() = default;

  virtual const Config& conn_config() const = 0;

  /// True once cooperative shutdown began: no new keep-alive rounds,
  /// and blocked writes abort instead of waiting out their deadline.
  virtual bool shutting_down() const = 0;

  /// Renders the server's uniform JSON error body (the same bytes the
  /// pre-event-loop server produced).
  virtual HttpResponse ErrorResponse(int http_status, const std::string& code,
                                     const std::string& message) const = 0;

  /// Routes and handles one request. Returns true when `*out` was
  /// filled inline (cheap, nonblocking handlers). Returns false when
  /// the request was offloaded; `done` is then invoked exactly once,
  /// from an arbitrary thread, with the response.
  virtual bool HandleRequest(HttpRequest request, HttpResponse* out,
                             std::function<void(HttpResponse)> done) = 0;

  /// Counts one answered request for /v1/stats (total + error class).
  virtual void CountResponse(int http_status) = 0;

  /// Observes how long one response took to drain to the socket
  /// (StartWrite -> fully flushed). Default: not recorded.
  virtual void RecordWritePhase(double seconds) { (void)seconds; }

  /// The connection closed and finished every obligation: unregister
  /// and delete it. Runs on the connection's loop thread.
  virtual void OnConnectionClosed(Connection* conn) = 0;
};

class Connection : public FdHandler {
 public:
  /// `fd` must be nonblocking; ownership transfers. `loop_index` and
  /// `counted` are host bookkeeping (which shard owns this connection,
  /// and whether it occupies a max_connections slot).
  Connection(int fd, EventLoop* loop, ConnectionHost* host, int loop_index,
             bool counted);
  ~Connection() override;

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Starts serving: registers read interest, arms the first-request
  /// read deadline.
  void Begin();

  /// Over-capacity path: skip reading, send `response` (e.g. the canned
  /// 503) and close gracefully.
  void BeginReject(HttpResponse response);

  void OnEvents(uint32_t events) override;

  /// Cooperative shutdown: closes idle/reading/writing connections now;
  /// a connection waiting on a dispatched handler stays alive so the
  /// completion can still write its response.
  void OnShutdown();

  int loop_index() const { return loop_index_; }
  bool counted() const { return counted_; }

 private:
  enum class State { kReading, kDispatching, kWriting, kDraining, kClosed };

  void OnReadable();
  void OnDrainReadable();
  /// A complete request sits in the parser: hand it to the host.
  void HandleParsedRequest();
  /// Invoked (via EventLoop::Post) when an offloaded handler finishes.
  void CompleteDispatch(HttpResponse response);
  /// Applies keep-alive policy to a host response and starts writing.
  void FinishDispatch(HttpResponse response);
  void StartWrite(HttpResponse response);
  void TryFlush();
  /// Response fully flushed: next keep-alive round or graceful close.
  void FinishResponse();
  void NextRequest();
  void EnterDrain();
  void OnReadTimeout();
  /// Closes the fd and unregisters. Self-deletes via the host unless an
  /// offloaded handler is still in flight (zombie until completion).
  void Close();

  void SetInterest(uint32_t events);
  void ArmReadTimer();
  void ArmWriteTimer();
  void ArmDrainTimer();
  void CancelTimer();

  int fd_;
  EventLoop* loop_;
  ConnectionHost* host_;
  const int loop_index_;
  const bool counted_;

  State state_ = State::kReading;
  HttpRequestParser parser_;
  std::string leftover_;      // pipelined bytes beyond the last request
  std::string outbuf_;        // serialized response being drained
  size_t outoff_ = 0;
  bool keep_after_write_ = false;
  bool wants_keep_alive_ = false;
  bool dispatch_pending_ = false;
  bool first_request_ = true;
  bool got_request_bytes_ = false;  // bytes of the CURRENT request
  int served_ = 0;
  uint64_t timer_id_ = 0;
  uint32_t interest_ = 0;
  /// Request id for the in-flight request: the client's sanitized
  /// X-Request-Id or a generated one. Echoed on every response,
  /// including parse errors, timeouts, and reject paths.
  std::string request_id_;
  double write_start_seconds_ = 0.0;  // monotonic; 0 = not writing
};

}  // namespace service
}  // namespace qfix

#endif  // QFIX_SERVICE_CONNECTION_H_
