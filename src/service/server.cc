#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/strings.h"
#include "common/timer.h"
#include "io/csv.h"
#include "provenance/denoiser.h"
#include "qfix/batch.h"
#include "qfix/report_json.h"
#include "service/json_value.h"

namespace qfix {
namespace service {

namespace {

/// RAII slots in the admission gate. The gate is counted in batch
/// items, not requests — one items[] request buys `count` slots so the
/// gate bounds solver work, not sockets. `admitted()` is false when the
/// gate lacked room — the request must be shed with 429. Callers cap
/// `count` at `capacity` so oversized batches stay admittable (on an
/// empty gate) instead of being shed forever.
class AdmissionSlot {
 public:
  AdmissionSlot(std::atomic<int>* inflight, int capacity, int count)
      : inflight_(inflight), count_(count) {
    int cur = inflight_->load(std::memory_order_relaxed);
    while (cur + count_ <= capacity) {
      if (inflight_->compare_exchange_weak(cur, cur + count_,
                                           std::memory_order_acq_rel)) {
        admitted_ = true;
        return;
      }
    }
  }
  ~AdmissionSlot() {
    if (admitted_) inflight_->fetch_sub(count_, std::memory_order_acq_rel);
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

  bool admitted() const { return admitted_; }

 private:
  std::atomic<int>* inflight_;
  int count_;
  bool admitted_ = false;
};

HttpResponse JsonError(int http_status, const std::string& code,
                       const std::string& message) {
  JsonWriter w;
  w.BeginObject();
  w.Key("error");
  w.BeginObject();
  w.Key("code");
  w.String(code);
  w.Key("message");
  w.String(message);
  w.EndObject();
  w.EndObject();
  HttpResponse out;
  out.status = http_status;
  out.body = w.str();
  return out;
}

HttpResponse StatusError(int http_status, const Status& status) {
  return JsonError(http_status, std::string(StatusCodeToString(status.code())),
                   status.message());
}

/// Sends all bytes, bounded by `deadline` and the shutdown token. A
/// peer that accepts the request but never reads the response (zero
/// TCP window) must not block the handler thread forever — that would
/// pin a connection slot permanently and hang Stop(), which waits for
/// every handler to finish. Short send timeouts let a blocked write
/// poll both exits; a response that fits the kernel buffer still goes
/// out in one non-blocking send even mid-shutdown.
bool SendAll(int fd, std::string_view bytes, Deadline deadline,
             const exec::CancellationToken& cancel) {
  timeval tv;
  tv.tv_sec = 0;
  tv.tv_usec = 200 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (cancel.cancelled() || deadline.Expired()) return false;
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Half-closes, briefly drains, then closes. close() on a socket with
/// unread received bytes (a rejected oversized body, a 503 shed before
/// the request was read) makes the kernel answer with RST, which can
/// destroy the queued response before the peer reads it. Waiting a
/// bounded moment for the peer's EOF after SHUT_WR lets the response
/// and FIN deliver first; misbehaving peers only cost `drain_ms`.
void ShutdownAndClose(int fd, int drain_ms) {
  ::shutdown(fd, SHUT_WR);
  timeval tv;
  tv.tv_sec = 0;
  tv.tv_usec = drain_ms * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char buf[4096];
  for (int i = 0; i < 16; ++i) {  // discard at most 64 KiB
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF, timeout, or peer reset
  }
  ::close(fd);
}

/// One diagnosis sub-request, decoded from JSON.
struct DiagnoseItem {
  std::shared_ptr<const Dataset> dataset;
  provenance::ComplaintSet complaints;
  int k = 1;
  double time_limit_seconds = 0.0;
  bool denoise = false;
};

}  // namespace

DiagnosisServer::DiagnosisServer(ServerOptions options)
    : options_(std::move(options)),
      registry_(static_cast<size_t>(std::max(options_.max_datasets, 0))) {
  options_.max_inflight = std::max(options_.max_inflight, 1);
  options_.max_connections = std::max(options_.max_connections, 1);
  options_.max_items = std::max(options_.max_items, 1);
  options_.max_requests_per_conn = std::max(options_.max_requests_per_conn, 1);
  if (options_.cache_bytes > 0) {
    cache_ = std::make_unique<cache::ReportCache>(options_.cache_bytes);
    registry_.AttachReportCache(cache_.get());
  }
}

DiagnosisServer::~DiagnosisServer() { Stop(); }

Status DiagnosisServer::Start() {
  QFIX_CHECK(!running_.load()) << "Start() on a running server";

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(StringPrintf("socket(): %s", strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("not an IPv4 address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Status::InvalidArgument(StringPrintf(
        "bind(%s:%d): %s", options_.host.c_str(), options_.port,
        strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 128) != 0) {
    Status s = Status::Internal(
        StringPrintf("listen(): %s", strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    bound_port_ = ntohs(addr.sin_port);
  }

  pool_ = std::make_unique<exec::ThreadPool>(options_.jobs);
  // Fresh cancellation source: a server restarted after Stop() must
  // not inherit the fired token (it would 503 every diagnosis).
  shutdown_ = exec::CancellationSource();
  started_at_seconds_ = MonotonicSeconds();
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void DiagnosisServer::Stop() {
  bool was_running = running_.exchange(false);
  // Fire the token first so queued batch items fail fast, then unblock
  // the accept loop by shutting the listener down.
  shutdown_.Cancel();
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::unique_lock<std::mutex> lock(conn_mu_);
    conn_cv_.wait(lock, [this] { return open_connections_ == 0; });
  }
  if (was_running) pool_.reset();
}

void DiagnosisServer::AcceptLoop() {
  while (running_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load()) break;  // listener shut down by Stop()
      // Transient conditions must not kill the accept loop: aborted
      // handshakes are routine under load, and fd exhaustion clears
      // once in-flight connections close.
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      break;  // genuinely fatal (EBADF, EINVAL, ...)
    }
    if (!running_.load()) {
      ::close(fd);
      break;
    }
    bool over_capacity = false;
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      if (open_connections_ >= options_.max_connections) {
        over_capacity = true;
      } else {
        ++open_connections_;
      }
    }
    if (over_capacity) {
      // Shed at the connection level without reading the request; the
      // canned response fits any kernel send buffer.
      HttpResponse busy = JsonError(503, "Unavailable",
                                    "connection limit reached");
      SendAll(fd, busy.Serialize(), Deadline::AfterSeconds(1.0),
              shutdown_.token());
      // Short drain: this runs on the accept thread, so a misbehaving
      // peer must not stall new connections for long.
      ShutdownAndClose(fd, /*drain_ms=*/10);
      counters_.total.fetch_add(1, std::memory_order_relaxed);
      counters_.err5xx.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::thread([this, fd] {
      HandleConnection(fd);
      std::lock_guard<std::mutex> lock(conn_mu_);
      --open_connections_;
      conn_cv_.notify_all();
    }).detach();
  }
}

DiagnosisServer::ReadOutcome DiagnosisServer::ReadRequest(
    int fd, std::string* leftover, bool first_request, HttpRequest* request,
    HttpResponse* error_response) {
  // Short socket timeouts let the loop poll the shutdown token while a
  // slow client trickles bytes; the overall Deadline bounds the request.
  timeval tv;
  tv.tv_sec = 0;
  tv.tv_usec = 200 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  HttpRequestParser parser(options_.http);
  bool got_bytes = false;

  auto feed = [&](std::string_view bytes) -> ReadOutcome {
    HttpRequestParser::State state = parser.Feed(bytes);
    if (state == HttpRequestParser::State::kComplete) {
      *request = parser.request();
      *leftover = parser.TakeLeftover();
      return ReadOutcome::kRequest;
    }
    if (state == HttpRequestParser::State::kError) {
      *error_response = JsonError(parser.error_status(), "BadRequest",
                                  parser.error());
      return ReadOutcome::kError;
    }
    return ReadOutcome::kIdleClose;  // sentinel for "need more"
  };

  // Pipelined bytes from the previous request on this connection.
  if (!leftover->empty()) {
    got_bytes = true;
    std::string pipelined = std::move(*leftover);
    leftover->clear();
    ReadOutcome out = feed(pipelined);
    if (parser.state() != HttpRequestParser::State::kNeedMore) return out;
  }

  // Between requests on a kept-alive connection the (usually longer)
  // idle budget applies; once the request's first byte arrives — and
  // for the very first request, whose connect already proved intent —
  // the read timeout governs.
  Deadline deadline = Deadline::AfterSeconds(
      first_request || got_bytes ? options_.read_timeout_seconds
                                 : options_.idle_timeout_seconds);
  char buf[8192];
  while (true) {
    if (shutdown_.cancelled()) return ReadOutcome::kIdleClose;
    if (deadline.Expired()) {
      if (!got_bytes && !first_request) {
        // Idle keep-alive connection: close quietly, nothing to answer.
        return ReadOutcome::kIdleClose;
      }
      *error_response =
          JsonError(408, "Timeout", "request not received in time");
      return ReadOutcome::kError;
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return ReadOutcome::kIdleClose;  // peer vanished; nothing to answer
    }
    if (n == 0) {
      // EOF before a complete request: nothing sensible to answer.
      return ReadOutcome::kIdleClose;
    }
    if (!got_bytes) {
      got_bytes = true;
      deadline = Deadline::AfterSeconds(options_.read_timeout_seconds);
    }
    ReadOutcome out = feed(std::string_view(buf, static_cast<size_t>(n)));
    if (parser.state() != HttpRequestParser::State::kNeedMore) return out;
  }
}

void DiagnosisServer::HandleConnection(int fd) {
  counters_.connections.fetch_add(1, std::memory_order_relaxed);
  std::string leftover;
  for (int served = 0; served < options_.max_requests_per_conn; ++served) {
    HttpRequest request;
    HttpResponse response;
    response.status = 0;
    ReadOutcome outcome =
        ReadRequest(fd, &leftover, /*first_request=*/served == 0, &request,
                    &response);
    if (outcome == ReadOutcome::kIdleClose) break;
    if (outcome == ReadOutcome::kRequest) {
      response = Dispatch(request);
      // Keep the connection iff the client wants it, the per-connection
      // request budget allows another, and we are not shutting down.
      response.keep_alive = request.WantsKeepAlive() &&
                            served + 1 < options_.max_requests_per_conn &&
                            !shutdown_.cancelled();
    }
    if (response.status == 0) break;
    // Every answered request counts, including protocol errors the
    // parser rejected — error rates derived from /v1/stats stay
    // consistent (errors <= total).
    counters_.total.fetch_add(1, std::memory_order_relaxed);
    if (response.status == 429) {
      counters_.shed.fetch_add(1, std::memory_order_relaxed);
    }
    if (response.status >= 400 && response.status < 500) {
      counters_.err4xx.fetch_add(1, std::memory_order_relaxed);
    } else if (response.status >= 500) {
      counters_.err5xx.fetch_add(1, std::memory_order_relaxed);
    }
    if (!SendAll(fd, response.Serialize(),
                 Deadline::AfterSeconds(options_.write_timeout_seconds),
                 shutdown_.token())) {
      break;
    }
    if (!response.keep_alive) break;
  }
  ShutdownAndClose(fd, /*drain_ms=*/100);
}

HttpResponse DiagnosisServer::Dispatch(const HttpRequest& request) {
  std::string_view path = request.path();
  if (path == "/v1/healthz") {
    counters_.health.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "GET") {
      return JsonError(405, "MethodNotAllowed", "use GET");
    }
    return HandleHealthz();
  }
  if (path == "/v1/stats") {
    counters_.stats.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "GET") {
      return JsonError(405, "MethodNotAllowed", "use GET");
    }
    return HandleStats();
  }
  if (path == "/v1/datasets") {
    counters_.datasets.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "POST") {
      return JsonError(405, "MethodNotAllowed", "use POST");
    }
    return HandleRegisterDataset(request);
  }
  if (path == "/v1/diagnose") {
    counters_.diagnose.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "POST") {
      return JsonError(405, "MethodNotAllowed", "use POST");
    }
    // Only served diagnoses feed the percentiles: healthz/stats pollers
    // and shed 429s run in microseconds and would swamp the sample
    // window, hiding exactly the latency /v1/stats exists to expose.
    const double start = MonotonicSeconds();
    HttpResponse response = HandleDiagnose(request);
    if (response.status == 200) {
      latency_.Record(MonotonicSeconds() - start);
    }
    return response;
  }
  if (options_.enable_test_endpoints && path == "/v1/debug/sleep") {
    return HandleDebugSleep(request);
  }
  return JsonError(404, "NotFound",
                   "unknown endpoint: " + std::string(path));
}

HttpResponse DiagnosisServer::HandleHealthz() {
  JsonWriter w;
  w.BeginObject();
  w.Key("status");
  w.String("ok");
  w.Key("datasets");
  w.Uint(registry_.size());
  w.Key("uptime_seconds");
  w.Double(MonotonicSeconds() - started_at_seconds_);
  w.EndObject();
  HttpResponse out;
  out.body = w.str();
  return out;
}

HttpResponse DiagnosisServer::HandleStats() {
  Stats s = stats();
  JsonWriter w;
  w.BeginObject();
  w.Key("requests");
  w.BeginObject();
  w.Key("total");
  w.Uint(s.requests_total);
  w.Key("datasets");
  w.Uint(s.requests_datasets);
  w.Key("diagnose");
  w.Uint(s.requests_diagnose);
  w.Key("healthz");
  w.Uint(s.requests_health);
  w.Key("stats");
  w.Uint(s.requests_stats);
  w.Key("shed_429");
  w.Uint(s.shed_429);
  w.Key("errors_4xx");
  w.Uint(s.errors_4xx);
  w.Key("errors_5xx");
  w.Uint(s.errors_5xx);
  w.Key("connections");
  w.Uint(s.connections_total);
  w.Key("items");
  w.Uint(s.items_total);
  w.Key("cached_hits");
  w.Uint(s.cached_hits);
  w.EndObject();
  w.Key("cache");
  w.BeginObject();
  w.Key("enabled");
  w.Bool(s.cache_enabled);
  w.Key("hits");
  w.Uint(s.cache.hits);
  w.Key("misses");
  w.Uint(s.cache.misses);
  w.Key("coalesced");
  w.Uint(s.cache.coalesced);
  w.Key("inserts");
  w.Uint(s.cache.inserts);
  w.Key("evictions");
  w.Uint(s.cache.evictions);
  w.Key("invalidations");
  w.Uint(s.cache.invalidations);
  w.Key("bytes");
  w.Uint(s.cache.bytes);
  w.Key("entries");
  w.Uint(s.cache.entries);
  w.Key("capacity_bytes");
  w.Uint(s.cache.capacity_bytes);
  w.EndObject();
  w.Key("latency");
  w.BeginObject();
  w.Key("count");
  w.Uint(s.latency.count);
  w.Key("p50_ms");
  w.Double(s.latency.p50 * 1e3);
  w.Key("p90_ms");
  w.Double(s.latency.p90 * 1e3);
  w.Key("p99_ms");
  w.Double(s.latency.p99 * 1e3);
  w.Key("max_ms");
  w.Double(s.latency.max * 1e3);
  w.EndObject();
  w.Key("queue");
  w.BeginObject();
  w.Key("inflight");
  w.Int(s.inflight);
  w.Key("capacity");
  w.Int(s.inflight_capacity);
  w.EndObject();
  w.Key("pool_workers");
  w.Int(pool_ != nullptr ? pool_->num_workers() : 0);
  w.EndObject();
  HttpResponse out;
  out.body = w.str();
  return out;
}

HttpResponse DiagnosisServer::HandleRegisterDataset(
    const HttpRequest& request) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) return StatusError(400, doc.status());

  auto name = doc->RequiredString("name");
  if (!name.ok()) return StatusError(400, name.status());
  auto log_sql = doc->RequiredString("log_sql");
  if (!log_sql.ok()) return StatusError(400, log_sql.status());

  const JsonValue* d0_csv = doc->Find("d0_csv");
  const JsonValue* d0_snapshot = doc->Find("d0_snapshot");
  const JsonValue* d0 = d0_csv != nullptr ? d0_csv : d0_snapshot;
  if ((d0_csv != nullptr) == (d0_snapshot != nullptr) || !d0->is_string()) {
    return JsonError(400, "InvalidArgument",
                     "exactly one of 'd0_csv' or 'd0_snapshot' must be "
                     "given as a string");
  }
  std::string table = "T";
  if (const JsonValue* t = doc->Find("table")) {
    if (!t->is_string()) {
      return JsonError(400, "InvalidArgument", "'table' must be a string");
    }
    table = t->AsString();
  }

  auto registered = registry_.Register(*name, d0->AsString(), table,
                                       *log_sql);
  if (!registered.ok()) {
    // A full registry is back-pressure (free a name or replace one),
    // not a malformed request.
    return StatusError(
        registered.status().IsResourceExhausted() ? 429 : 400,
        registered.status());
  }

  const Dataset& ds = **registered;
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String(ds.name);
  w.Key("table");
  w.String(ds.d0.table_name());
  w.Key("attrs");
  w.Uint(ds.d0.schema().num_attrs());
  w.Key("tuples");
  w.Uint(ds.d0.NumSlots());
  w.Key("queries");
  w.Uint(ds.log.size());
  w.EndObject();
  HttpResponse out;
  out.body = w.str();
  return out;
}

HttpResponse DiagnosisServer::HandleDiagnose(const HttpRequest& request) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) return StatusError(400, doc.status());

  // One request is either a single diagnosis object or {"items":[...]}.
  std::vector<const JsonValue*> item_docs;
  bool batched = false;
  if (const JsonValue* items = doc->Find("items")) {
    if (!items->is_array() || items->AsArray().empty()) {
      return JsonError(400, "InvalidArgument",
                       "'items' must be a non-empty array");
    }
    if (items->AsArray().size() > static_cast<size_t>(options_.max_items)) {
      return JsonError(413, "ResourceExhausted",
                       StringPrintf("'items' has %zu entries; this server "
                                    "accepts at most %d per request",
                                    items->AsArray().size(),
                                    options_.max_items));
    }
    batched = true;
    for (const JsonValue& item : items->AsArray()) {
      if (!item.is_object()) {
        return JsonError(400, "InvalidArgument",
                         "every item must be an object");
      }
      item_docs.push_back(&item);
    }
  } else {
    item_docs.push_back(&*doc);
  }

  // Decode every item before admitting: malformed requests must not
  // occupy a slot.
  std::vector<DiagnoseItem> decoded;
  decoded.reserve(item_docs.size());
  for (size_t i = 0; i < item_docs.size(); ++i) {
    const JsonValue& item = *item_docs[i];
    auto ds_name = item.RequiredString("dataset");
    if (!ds_name.ok()) return StatusError(400, ds_name.status());
    DiagnoseItem di;
    di.dataset = registry_.Get(*ds_name);
    if (di.dataset == nullptr) {
      return JsonError(404, "NotFound",
                       StringPrintf("item %zu: dataset '%s' is not "
                                    "registered",
                                    i, ds_name->c_str()));
    }
    auto complaints_csv = item.RequiredString("complaints_csv");
    if (!complaints_csv.ok()) return StatusError(400, complaints_csv.status());
    auto complaints =
        io::ComplaintsFromCsv(*complaints_csv, di.dataset->d0.schema());
    if (!complaints.ok()) return StatusError(400, complaints.status());
    di.complaints = std::move(complaints).value();
    if (di.complaints.empty()) {
      return JsonError(400, "InvalidArgument",
                       StringPrintf("item %zu: complaint set is empty", i));
    }
    auto denoise = item.BoolOr("denoise", false);
    if (!denoise.ok()) return StatusError(400, denoise.status());
    di.denoise = *denoise;
    if (di.denoise) {
      // Denoise at decode time so the cache key hashes the complaint
      // set that is actually diagnosed.
      di.complaints =
          provenance::DenoiseComplaints(di.complaints, di.dataset->dirty)
              .kept;
    }
    auto k = item.NumberOr("k", 1.0);
    if (!k.ok()) return StatusError(400, k.status());
    if (*k < 0.0 || *k > 1000.0 || *k != static_cast<int>(*k)) {
      return JsonError(400, "InvalidArgument",
                       "'k' must be an integer in [0, 1000]");
    }
    auto basic = item.BoolOr("basic", false);
    if (!basic.ok()) return StatusError(400, basic.status());
    di.k = *basic ? 0 : static_cast<int>(*k);
    auto time_limit =
        item.NumberOr("time_limit_seconds", options_.max_time_limit_seconds);
    if (!time_limit.ok()) return StatusError(400, time_limit.status());
    di.time_limit_seconds =
        std::min(*time_limit, options_.max_time_limit_seconds);
    if (di.time_limit_seconds <= 0.0) {
      di.time_limit_seconds = options_.max_time_limit_seconds;
    }
    decoded.push_back(std::move(di));
  }

  // Build the zero-copy batch: every item shares the registered
  // snapshot by reference (no Dataset deep copy, see cache/snapshot.h).
  std::vector<qfixcore::BatchItem> batch;
  batch.reserve(decoded.size());
  for (DiagnoseItem& di : decoded) {
    qfixcore::BatchItem item;
    item.data = cache::Snapshot(di.dataset);
    item.complaints = di.complaints;
    item.options.time_limit_seconds = di.time_limit_seconds;
    // Share the server's pool with the inner solves: no per-request
    // thread churn (the MilpOptions/BatchOptions caller-owned hooks).
    // The shutdown token reaches the solver's node loop too, so Stop()
    // interrupts running searches instead of waiting out their budget.
    item.options.milp.pool = pool_.get();
    item.options.milp.cancel = shutdown_.token();
    item.k = di.k;
    batch.push_back(std::move(item));
  }

  // Consult the report cache before touching the admission gate or the
  // pool: a hit answers with the byte-identical cached report and does
  // no solver work. A cold miss takes singleflight leadership —
  // concurrent identical requests block on our solve instead of
  // repeating it — which this request must settle (publish or abandon)
  // on every exit path below.
  struct ItemPlan {
    /// Non-null: serve from cache (shared with the cache entry — the
    /// report bytes are referenced, never copied).
    std::shared_ptr<const cache::CachedReport> cached;
    bool lead = false;                  // we own Publish/Abandon
    std::optional<cache::CacheKey> key;
    size_t dup_of = SIZE_MAX;           // identical item in this
                                        // request (solve once)
  };
  std::vector<ItemPlan> plans(batch.size());
  size_t solves = 0;
  if (cache_ == nullptr) {
    solves = batch.size();
  } else {
    for (size_t i = 0; i < batch.size(); ++i) {
      plans[i].key = qfixcore::ItemCacheKey(batch[i]);
    }
    // Acquire lookups/leaderships in globally sorted key order. A
    // request holds several leaderships at once while later lookups may
    // block on other requests' leaders; without a total acquisition
    // order, two requests leading each other's keys in opposite orders
    // would deadlock. Sorted acquisition means every wait targets a key
    // strictly greater than anything the waiter holds — no cycles.
    std::vector<size_t> order(batch.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    auto key_less = [&](size_t a, size_t b) {
      const cache::CacheKey& ka = *plans[a].key;
      const cache::CacheKey& kb = *plans[b].key;
      if (ka.dataset != kb.dataset) return ka.dataset < kb.dataset;
      if (ka.version != kb.version) return ka.version < kb.version;
      return ka.request_hash < kb.request_hash;
    };
    std::stable_sort(order.begin(), order.end(), key_less);
    for (size_t pos = 0; pos < order.size(); ++pos) {
      size_t i = order[pos];
      ItemPlan& plan = plans[i];
      // A duplicate of an item this request already leads must not
      // FindOrLead again — it would block on its own request's solve.
      // Equal keys are adjacent after sorting.
      if (pos > 0 && *plans[order[pos - 1]].key == *plan.key) {
        size_t prev = order[pos - 1];
        plan.dup_of =
            plans[prev].dup_of != SIZE_MAX ? plans[prev].dup_of : prev;
        continue;
      }
      cache::ReportCache::Outcome found =
          cache_->FindOrLead(*plan.key, shutdown_.token());
      if (found.value != nullptr) {
        plan.cached = std::move(found.value);
        counters_.cached_hits.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      plan.lead = found.lead;
      ++solves;
    }
  }
  auto abandon_leads = [&]() {
    for (const ItemPlan& plan : plans) {
      if (plan.lead) cache_->Abandon(*plan.key);
    }
  };

  // Placeholder status for slots served from the cache (never rendered:
  // the cached path renders the report string instead).
  std::vector<Result<qfixcore::Repair>> results(
      batch.size(),
      Result<qfixcore::Repair>(Status::Internal("served from cache")));
  std::vector<std::string> reports(batch.size());
  if (solves > 0) {
    // Admission is counted in batch items (one request can fan out
    // items[]); cache hits took no slot. Over capacity, shed rather
    // than queue — and release any singleflight leadership first. The
    // weight is capped at the gate's capacity so a request with more
    // items than max_inflight is still admittable (it must wait for an
    // empty gate and then occupies all of it) instead of being 429'd
    // forever.
    AdmissionSlot slot(&inflight_, options_.max_inflight,
                       std::min(static_cast<int>(solves),
                                options_.max_inflight));
    if (!slot.admitted()) {
      abandon_leads();
      return JsonError(429, "OverCapacity",
                       StringPrintf("diagnosis queue is full (%zu items "
                                    "over %d slots)",
                                    solves, options_.max_inflight));
    }
    if (shutdown_.cancelled()) {
      abandon_leads();
      return JsonError(503, "ShuttingDown", "server is shutting down");
    }
    counters_.items.fetch_add(solves, std::memory_order_relaxed);

    std::vector<qfixcore::BatchItem> to_solve;
    std::vector<size_t> solve_index;
    to_solve.reserve(solves);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (plans[i].cached == nullptr && plans[i].dup_of == SIZE_MAX) {
        to_solve.push_back(batch[i]);
        solve_index.push_back(i);
      }
    }

    qfixcore::BatchOptions batch_options;
    batch_options.pool = pool_.get();
    batch_options.cancel = shutdown_.token();
    // Note: no report_cache here — this request already holds the
    // singleflight leadership for its keys and publishes below. The
    // server keeps its own integration (instead of reusing
    // BatchOptions::report_cache) because hits must bypass the
    // admission gate and splice the cached report bytes verbatim,
    // neither of which the library path can know about.
    qfixcore::BatchDiagnoser diagnoser(batch_options);
    std::vector<Result<qfixcore::Repair>> solved = diagnoser.Run(to_solve);

    for (size_t s = 0; s < solved.size(); ++s) {
      size_t i = solve_index[s];
      if (solved[s].ok()) {
        reports[i] = qfixcore::RepairToJson(
            *solved[s], batch[i].data->log, batch[i].data->d0,
            batch[i].data->dirty, batch[i].complaints);
        // Memoize only proven-optimal repairs: a limit-truncated
        // feasible incumbent depends on this request's budget and must
        // not be served to callers with bigger ones.
        if (plans[i].lead && solved[s]->stats.optimal) {
          cache::CachedReport cached;
          cached.report_json = reports[i];
          cached.payload =
              std::make_shared<const qfixcore::Repair>(*solved[s]);
          cache_->Publish(*plans[i].key, std::move(cached));
          plans[i].lead = false;
        }
      }
      if (plans[i].lead) {
        cache_->Abandon(*plans[i].key);
        plans[i].lead = false;
      }
      results[i] = std::move(solved[s]);
    }
  }
  // Resolve in-request duplicates and belt-and-braces any leadership
  // still held (e.g. an item skipped by cancellation).
  for (size_t i = 0; i < batch.size(); ++i) {
    if (plans[i].dup_of != SIZE_MAX) {
      results[i] = results[plans[i].dup_of];
    }
  }
  abandon_leads();

  // Render: per-item ok/report or ok/error, plus whether the report
  // came from the cache. The report document is the exact report_json
  // rendering — a cache hit splices the original solve's bytes.
  auto render_item = [&](size_t i, JsonWriter* w) {
    const ItemPlan& plan = plans[i];
    // Duplicates read through the item that did the lookup/solve.
    const size_t src = plan.dup_of != SIZE_MAX ? plan.dup_of : i;
    bool cached = plans[src].cached != nullptr;
    const std::string& report =
        cached ? plans[src].cached->report_json : reports[src];
    bool ok = cached || results[i].ok();
    w->BeginObject();
    w->Key("dataset");
    w->String(decoded[i].dataset->name);
    w->Key("ok");
    w->Bool(ok);
    w->Key("cached");
    w->Bool(cached);
    if (ok) {
      w->Key("report");
      w->Raw(report);
    } else {
      w->Key("error");
      w->BeginObject();
      w->Key("code");
      w->String(StatusCodeToString(results[i].status().code()));
      w->Key("message");
      w->String(results[i].status().message());
      w->EndObject();
    }
    w->EndObject();
  };

  JsonWriter w;
  if (batched) {
    w.BeginObject();
    w.Key("results");
    w.BeginArray();
    for (size_t i = 0; i < batch.size(); ++i) {
      render_item(i, &w);
    }
    w.EndArray();
    w.EndObject();
  } else {
    render_item(0, &w);
  }
  HttpResponse out;
  out.body = w.str();
  return out;
}

HttpResponse DiagnosisServer::HandleDebugSleep(const HttpRequest& request) {
  if (request.method != "POST") {
    return JsonError(405, "MethodNotAllowed", "use POST");
  }
  auto doc = ParseJson(request.body.empty() ? "{}" : request.body);
  if (!doc.ok()) return StatusError(400, doc.status());
  auto requested = doc->NumberOr("seconds", 0.1);
  if (!requested.ok()) return StatusError(400, requested.status());
  double seconds = std::clamp(*requested, 0.0, 30.0);

  AdmissionSlot slot(&inflight_, options_.max_inflight, /*count=*/1);
  if (!slot.admitted()) {
    return JsonError(429, "OverCapacity", "diagnosis queue is full");
  }
  Deadline deadline = Deadline::AfterSeconds(seconds);
  while (!deadline.Expired() && !shutdown_.cancelled()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("slept_seconds");
  w.Double(seconds);
  w.Key("cancelled");
  w.Bool(shutdown_.cancelled());
  w.EndObject();
  HttpResponse out;
  out.body = w.str();
  return out;
}

DiagnosisServer::Stats DiagnosisServer::stats() const {
  Stats s;
  s.requests_total = counters_.total.load(std::memory_order_relaxed);
  s.requests_datasets = counters_.datasets.load(std::memory_order_relaxed);
  s.requests_diagnose = counters_.diagnose.load(std::memory_order_relaxed);
  s.requests_health = counters_.health.load(std::memory_order_relaxed);
  s.requests_stats = counters_.stats.load(std::memory_order_relaxed);
  s.shed_429 = counters_.shed.load(std::memory_order_relaxed);
  s.errors_4xx = counters_.err4xx.load(std::memory_order_relaxed);
  s.errors_5xx = counters_.err5xx.load(std::memory_order_relaxed);
  s.connections_total = counters_.connections.load(std::memory_order_relaxed);
  s.items_total = counters_.items.load(std::memory_order_relaxed);
  s.cached_hits = counters_.cached_hits.load(std::memory_order_relaxed);
  s.inflight = inflight_.load(std::memory_order_relaxed);
  s.inflight_capacity = options_.max_inflight;
  s.latency = latency_.Take();
  s.cache_enabled = cache_ != nullptr;
  if (cache_ != nullptr) s.cache = cache_->stats();
  return s;
}

}  // namespace service
}  // namespace qfix
