#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/json.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/timer.h"
#include "io/csv.h"
#include "obs/trace.h"
#include "provenance/denoiser.h"
#include "qfix/batch.h"
#include "qfix/report_json.h"
#include "service/event_loop.h"
#include "service/json_value.h"

namespace qfix {
namespace service {

namespace {

HttpResponse JsonError(int http_status, const std::string& code,
                       const std::string& message) {
  JsonWriter w;
  w.BeginObject();
  w.Key("error");
  w.BeginObject();
  w.Key("code");
  w.String(code);
  w.Key("message");
  w.String(message);
  w.EndObject();
  w.EndObject();
  HttpResponse out;
  out.status = http_status;
  out.body = w.str();
  return out;
}

HttpResponse StatusError(int http_status, const Status& status) {
  return JsonError(http_status, std::string(StatusCodeToString(status.code())),
                   status.message());
}

/// One diagnosis sub-request, decoded from JSON.
struct DiagnoseItem {
  std::shared_ptr<const Dataset> dataset;
  provenance::ComplaintSet complaints;
  int k = 1;
  double time_limit_seconds = 0.0;
  bool denoise = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// Loop shards and the shared-listener acceptor

struct DiagnosisServer::LoopShard {
  EventLoop loop;
  std::thread thread;
  /// Connections owned by this loop (including zombies waiting on a
  /// dispatched handler). Loop-thread only.
  std::unordered_set<Connection*> conns;
  std::unique_ptr<Acceptor> acceptor;
  int index = 0;
  /// Watchdog heartbeat: a self-rescheduling timer-wheel entry proves
  /// the loop is dispatching (an idle loop parked in epoll_wait with no
  /// timers would otherwise read as wedged). Owned here so the
  /// recursive closure has a stable home.
  int hb_handle = -1;
  std::function<void()> hb_tick;
};

/// One shard's registration on the shared nonblocking listener
/// (EPOLLIN | EPOLLEXCLUSIVE, so the kernel wakes one loop per pending
/// connection instead of all of them). On resource exhaustion the
/// acceptor backs off: it unregisters and re-registers off the timer
/// wheel 50ms later — EPOLL_CTL_MOD is forbidden on EPOLLEXCLUSIVE
/// registrations, so Del + Add is the only legal dance.
class DiagnosisServer::Acceptor : public FdHandler {
 public:
  Acceptor(DiagnosisServer* server, LoopShard* shard, int listen_fd)
      : server_(server), shard_(shard), listen_fd_(listen_fd) {}

  void Register() {
    if (registered_) return;
    registered_ = true;
    (void)shard_->loop.Add(listen_fd_, EPOLLIN, this, EPOLLEXCLUSIVE);
  }

  void Shutdown() {
    if (retry_timer_ != 0) {
      shard_->loop.timers().Cancel(retry_timer_);
      retry_timer_ = 0;
    }
    if (registered_) {
      shard_->loop.Del(listen_fd_);
      registered_ = false;
    }
  }

  void OnEvents(uint32_t) override { AcceptSome(); }

 private:
  void AcceptSome() {
    for (;;) {
      int fd = ::accept4(listen_fd_, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        // Transient conditions must not kill accepting: aborted
        // handshakes are routine under load.
        if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
          continue;
        }
        // Resource exhaustion (EMFILE/ENFILE/ENOMEM/ENOBUFS) clears
        // once in-flight connections close; anything unexpected gets
        // the same brief back-off rather than a dead listener.
        Backoff();
        return;
      }
      if (!server_->running_.load(std::memory_order_acquire)) {
        ::close(fd);
        return;
      }
      server_->OnAccept(fd, shard_);
    }
  }

  void Backoff() {
    if (registered_) {
      shard_->loop.Del(listen_fd_);
      registered_ = false;
    }
    if (retry_timer_ != 0) return;
    retry_timer_ = shard_->loop.timers().Schedule(0.05, [this] {
      retry_timer_ = 0;
      Register();
      AcceptSome();
    });
  }

  DiagnosisServer* server_;
  LoopShard* shard_;
  int listen_fd_;
  bool registered_ = false;
  uint64_t retry_timer_ = 0;
};

// ---------------------------------------------------------------------------
// Lifecycle

DiagnosisServer::DiagnosisServer(ServerOptions options)
    : options_(std::move(options)),
      registry_(RegistryOptions{
          static_cast<size_t>(std::max(options_.max_datasets, 0)),
          options_.registry_bytes, options_.registry_ttl_seconds}) {
  options_.max_inflight = std::max(options_.max_inflight, 1);
  options_.max_connections = std::max(options_.max_connections, 1);
  options_.max_items = std::max(options_.max_items, 1);
  options_.max_requests_per_conn = std::max(options_.max_requests_per_conn, 1);
  options_.event_loop_threads =
      std::clamp(options_.event_loop_threads, 1, 64);
  options_.trace_sample_probability =
      std::clamp(options_.trace_sample_probability, 0.0, 1.0);
  if (options_.warn_log_per_sec > 0.0) {
    SetWarnLogPerSec(options_.warn_log_per_sec);
  }
  if (options_.trace_buffer_bytes > 0) {
    obs::TraceRecorder::Options rec;
    rec.byte_budget = options_.trace_buffer_bytes;
    rec.sample_probability = options_.trace_sample_probability;
    rec.slow_threshold_seconds = options_.slow_request_ms / 1e3;
    recorder_ = std::make_unique<obs::TraceRecorder>(rec);
  }
  conn_config_.read_timeout_seconds = options_.read_timeout_seconds;
  conn_config_.write_timeout_seconds = options_.write_timeout_seconds;
  conn_config_.idle_timeout_seconds = options_.idle_timeout_seconds;
  conn_config_.max_requests_per_conn = options_.max_requests_per_conn;
  conn_config_.http = options_.http;
  if (options_.cache_bytes > 0) {
    cache_ = std::make_unique<cache::ReportCache>(
        options_.cache_bytes, /*num_shards=*/8,
        options_.cache_tenant_fraction);
    registry_.AttachReportCache(cache_.get());
  }
  if (options_.encoding_cache_bytes > 0) {
    encoding_cache_ =
        std::make_unique<ingest::EncodingCache>(options_.encoding_cache_bytes);
    registry_.AttachEncodingCache(encoding_cache_.get());
  }
  TenantGovernor::Options gov;
  gov.capacity = options_.max_inflight;
  gov.activity_window_seconds = options_.tenant_activity_window_seconds;
  governor_ = std::make_unique<TenantGovernor>(gov);
  for (const auto& [tenant, weight] : options_.tenant_weights) {
    governor_->SetWeight(tenant, weight);
  }
  SetupMetrics();
}

// ---------------------------------------------------------------------------
// Metrics registration
//
// Two tiers, matching the header's design note in obs/metrics.h:
//   * owned instruments for data nothing else accumulates — per-phase
//     latency, per-tenant diagnose latency, solver/encoder totals;
//   * scrape-time callbacks over the stats structs the subsystems
//     already maintain (counters_, cache_, registry_, governor_,
//     encoding_cache_) — zero hot-path cost and no double accounting.
void DiagnosisServer::SetupMetrics() {
  std::vector<double> edges = obs::DefaultLatencyBucketEdges();

  obs::HistogramFamily* phases = metrics_.AddHistogram(
      "qfix_request_phase_seconds",
      "Per-phase latency of served /v1/diagnose requests "
      "(parse/cache/admission/encode/solve/render) plus response drain "
      "time (write).",
      edges, {"phase"});
  phase_parse_ = phases->WithLabels({"parse"});
  phase_cache_ = phases->WithLabels({"cache"});
  phase_admission_ = phases->WithLabels({"admission"});
  phase_encode_ = phases->WithLabels({"encode"});
  phase_solve_ = phases->WithLabels({"solve"});
  phase_render_ = phases->WithLabels({"render"});
  phase_write_ = phases->WithLabels({"write"});
  diagnose_seconds_by_tenant_ = metrics_.AddHistogram(
      "qfix_diagnose_seconds",
      "Wall time of served /v1/diagnose requests, by tenant.", edges,
      {"tenant"});
  solver_nodes_total_ = metrics_.AddCounter(
      "qfix_solver_nodes_total",
      "Branch & bound nodes explored across all served diagnoses.")->Get();
  solver_lp_iterations_total_ = metrics_.AddCounter(
      "qfix_solver_lp_iterations_total",
      "Simplex iterations across all served diagnoses.")->Get();
  solver_incumbent_updates_total_ = metrics_.AddCounter(
      "qfix_solver_incumbent_updates_total",
      "Times a branch & bound worker installed a new best incumbent.")
      ->Get();
  encoder_constraints_total_ = metrics_.AddCounter(
      "qfix_encoder_constraints_total",
      "MILP constraints emitted by the encoder.")->Get();
  encoder_variables_total_ = metrics_.AddCounter(
      "qfix_encoder_variables_total",
      "MILP variables emitted by the encoder.")->Get();
  encoder_prefix_reused_total_ = metrics_.AddCounter(
      "qfix_encoder_prefix_reused_total",
      "Diagnoses that replayed a memoized chunk-prefix state instead of "
      "re-encoding the full log.")->Get();
  slow_requests_total_ = metrics_.AddCounter(
      "qfix_slow_requests_total",
      "Diagnose requests slower than --slow-request-ms.")->Get();

  using Kind = obs::MetricsRegistry::Kind;
  using Sample = obs::MetricsRegistry::Sample;
  metrics_.AddCallback(
      "qfix_requests_total", "Requests routed, by endpoint.", Kind::kCounter,
      {"endpoint"}, [this](std::vector<Sample>* out) {
        auto add = [out](const char* endpoint, uint64_t v) {
          out->push_back({{endpoint}, static_cast<double>(v)});
        };
        add("append", counters_.append.load(std::memory_order_relaxed));
        add("datasets", counters_.datasets.load(std::memory_order_relaxed));
        add("debug", counters_.debug.load(std::memory_order_relaxed));
        add("diagnose", counters_.diagnose.load(std::memory_order_relaxed));
        add("healthz", counters_.health.load(std::memory_order_relaxed));
        add("metrics", counters_.metrics.load(std::memory_order_relaxed));
        add("stats", counters_.stats.load(std::memory_order_relaxed));
      });
  metrics_.AddCallback(
      "qfix_http_responses_total", "Responses written, by status class.",
      Kind::kCounter, {"class"}, [this](std::vector<Sample>* out) {
        uint64_t total = counters_.total.load(std::memory_order_relaxed);
        uint64_t e4 = counters_.err4xx.load(std::memory_order_relaxed);
        uint64_t e5 = counters_.err5xx.load(std::memory_order_relaxed);
        uint64_t ok = total >= e4 + e5 ? total - e4 - e5 : 0;
        out->push_back({{"2xx"}, static_cast<double>(ok)});
        out->push_back({{"4xx"}, static_cast<double>(e4)});
        out->push_back({{"5xx"}, static_cast<double>(e5)});
      });
  metrics_.AddCallback(
      "qfix_shed_total", "Requests shed with 429 over capacity.",
      Kind::kCounter, {}, [this](std::vector<Sample>* out) {
        out->push_back({{}, static_cast<double>(counters_.shed.load(
                                std::memory_order_relaxed))});
      });
  metrics_.AddCallback(
      "qfix_connections_total", "TCP connections accepted.", Kind::kCounter,
      {}, [this](std::vector<Sample>* out) {
        out->push_back({{}, static_cast<double>(counters_.connections.load(
                                std::memory_order_relaxed))});
      });
  metrics_.AddCallback(
      "qfix_open_connections", "Connections currently admitted.",
      Kind::kGauge, {}, [this](std::vector<Sample>* out) {
        out->push_back({{}, static_cast<double>(open_connections_.load(
                                std::memory_order_relaxed))});
      });
  metrics_.AddCallback(
      "qfix_inflight_items", "Batch items currently inside the admission "
      "gate.", Kind::kGauge, {}, [this](std::vector<Sample>* out) {
        out->push_back({{}, static_cast<double>(governor_->inflight())});
      });
  metrics_.AddCallback(
      "qfix_inflight_capacity", "Admission gate capacity in batch items.",
      Kind::kGauge, {}, [this](std::vector<Sample>* out) {
        out->push_back({{}, static_cast<double>(options_.max_inflight)});
      });
  metrics_.AddCallback(
      "qfix_items_total", "Batch items admitted and solved.", Kind::kCounter,
      {}, [this](std::vector<Sample>* out) {
        out->push_back({{}, static_cast<double>(counters_.items.load(
                                std::memory_order_relaxed))});
      });
  metrics_.AddCallback(
      "qfix_cached_hits_total",
      "Diagnose sub-requests answered from the report cache.",
      Kind::kCounter, {}, [this](std::vector<Sample>* out) {
        out->push_back({{}, static_cast<double>(counters_.cached_hits.load(
                                std::memory_order_relaxed))});
      });
  metrics_.AddCallback(
      "qfix_report_cache_events_total", "Report cache events, by kind.",
      Kind::kCounter, {"event"}, [this](std::vector<Sample>* out) {
        if (cache_ == nullptr) return;
        cache::ReportCache::Stats s = cache_->stats();
        auto add = [out](const char* event, uint64_t v) {
          out->push_back({{event}, static_cast<double>(v)});
        };
        add("coalesced", s.coalesced);
        add("evictions", s.evictions);
        add("hits", s.hits);
        add("inserts", s.inserts);
        add("invalidations", s.invalidations);
        add("misses", s.misses);
      });
  metrics_.AddCallback(
      "qfix_report_cache_bytes", "Report cache occupancy in bytes.",
      Kind::kGauge, {}, [this](std::vector<Sample>* out) {
        if (cache_ == nullptr) return;
        out->push_back({{}, static_cast<double>(cache_->stats().bytes)});
      });
  metrics_.AddCallback(
      "qfix_report_cache_entries", "Report cache entries.", Kind::kGauge, {},
      [this](std::vector<Sample>* out) {
        if (cache_ == nullptr) return;
        out->push_back({{}, static_cast<double>(cache_->stats().entries)});
      });
  metrics_.AddCallback(
      "qfix_report_cache_capacity_bytes", "Report cache byte budget.",
      Kind::kGauge, {}, [this](std::vector<Sample>* out) {
        if (cache_ == nullptr) return;
        out->push_back(
            {{}, static_cast<double>(cache_->stats().capacity_bytes)});
      });
  metrics_.AddCallback(
      "qfix_registry_datasets", "Datasets currently registered.",
      Kind::kGauge, {}, [this](std::vector<Sample>* out) {
        out->push_back({{}, static_cast<double>(registry_.stats().datasets)});
      });
  metrics_.AddCallback(
      "qfix_registry_bytes", "Registry occupancy over ApproxDatasetBytes.",
      Kind::kGauge, {}, [this](std::vector<Sample>* out) {
        out->push_back({{}, static_cast<double>(registry_.stats().bytes)});
      });
  metrics_.AddCallback(
      "qfix_registry_capacity_bytes", "Registry byte budget (0 = unbounded).",
      Kind::kGauge, {}, [this](std::vector<Sample>* out) {
        out->push_back(
            {{}, static_cast<double>(registry_.stats().capacity_bytes)});
      });
  metrics_.AddCallback(
      "qfix_registry_evictions_total", "Registry evictions, by kind.",
      Kind::kCounter, {"kind"}, [this](std::vector<Sample>* out) {
        DatasetRegistry::Stats s = registry_.stats();
        out->push_back({{"lru"}, static_cast<double>(s.evictions)});
        out->push_back({{"ttl"}, static_cast<double>(s.ttl_evictions)});
      });
  metrics_.AddCallback(
      "qfix_ingest_appends_total", "Successful append publications.",
      Kind::kCounter, {}, [this](std::vector<Sample>* out) {
        out->push_back({{}, static_cast<double>(registry_.stats().appends)});
      });
  metrics_.AddCallback(
      "qfix_ingest_chunks", "Sealed chunks across registered head versions.",
      Kind::kGauge, {}, [this](std::vector<Sample>* out) {
        out->push_back({{}, static_cast<double>(registry_.stats().chunks)});
      });
  metrics_.AddCallback(
      "qfix_ingest_appended_queries_total", "Queries accepted via append.",
      Kind::kCounter, {}, [this](std::vector<Sample>* out) {
        out->push_back(
            {{}, static_cast<double>(counters_.appended_queries.load(
                     std::memory_order_relaxed))});
      });
  metrics_.AddCallback(
      "qfix_encoding_cache_events_total",
      "Chunk-prefix encoding cache events, by kind.", Kind::kCounter,
      {"event"}, [this](std::vector<Sample>* out) {
        if (encoding_cache_ == nullptr) return;
        ingest::EncodingCache::Stats s = encoding_cache_->stats();
        out->push_back({{"compute"}, static_cast<double>(s.computes)});
        out->push_back({{"hit"}, static_cast<double>(s.hits)});
        out->push_back({{"miss"}, static_cast<double>(s.misses)});
      });
  metrics_.AddCallback(
      "qfix_encoding_cache_bytes", "Encoding cache occupancy in bytes.",
      Kind::kGauge, {}, [this](std::vector<Sample>* out) {
        if (encoding_cache_ == nullptr) return;
        out->push_back(
            {{}, static_cast<double>(encoding_cache_->stats().bytes)});
      });
  metrics_.AddCallback(
      "qfix_encoding_cache_entries", "Encoding cache entries.", Kind::kGauge,
      {}, [this](std::vector<Sample>* out) {
        if (encoding_cache_ == nullptr) return;
        out->push_back(
            {{}, static_cast<double>(encoding_cache_->stats().entries)});
      });
  metrics_.AddCallback(
      "qfix_surviving_cache_bytes",
      "Report-cache bytes of the last appended dataset that survived its "
      "append.", Kind::kGauge, {}, [this](std::vector<Sample>* out) {
        out->push_back(
            {{}, static_cast<double>(counters_.surviving_cache_bytes.load(
                     std::memory_order_relaxed))});
      });
  metrics_.AddCallback(
      "qfix_tenant_requests_total", "Diagnose requests, by tenant.",
      Kind::kCounter, {"tenant"}, [this](std::vector<Sample>* out) {
        for (const TenantGovernor::TenantStats& t : governor_->Snapshot()) {
          out->push_back({{t.name}, static_cast<double>(t.requests)});
        }
      });
  metrics_.AddCallback(
      "qfix_tenant_shed_total", "429 sheds, by tenant.", Kind::kCounter,
      {"tenant"}, [this](std::vector<Sample>* out) {
        for (const TenantGovernor::TenantStats& t : governor_->Snapshot()) {
          out->push_back({{t.name}, static_cast<double>(t.shed_429)});
        }
      });
  metrics_.AddCallback(
      "qfix_tenant_items_total", "Batch items admitted, by tenant.",
      Kind::kCounter, {"tenant"}, [this](std::vector<Sample>* out) {
        for (const TenantGovernor::TenantStats& t : governor_->Snapshot()) {
          out->push_back({{t.name}, static_cast<double>(t.items)});
        }
      });
  metrics_.AddCallback(
      "qfix_tenant_cached_hits_total", "Report-cache hits, by tenant.",
      Kind::kCounter, {"tenant"}, [this](std::vector<Sample>* out) {
        for (const TenantGovernor::TenantStats& t : governor_->Snapshot()) {
          out->push_back({{t.name}, static_cast<double>(t.cached_hits)});
        }
      });
  metrics_.AddCallback(
      "qfix_tenant_inflight", "Items inside the gate, by tenant.",
      Kind::kGauge, {"tenant"}, [this](std::vector<Sample>* out) {
        for (const TenantGovernor::TenantStats& t : governor_->Snapshot()) {
          out->push_back({{t.name}, static_cast<double>(t.inflight)});
        }
      });
  metrics_.AddCallback(
      "qfix_tenant_share", "Guaranteed admission share, by tenant.",
      Kind::kGauge, {"tenant"}, [this](std::vector<Sample>* out) {
        for (const TenantGovernor::TenantStats& t : governor_->Snapshot()) {
          out->push_back({{t.name}, static_cast<double>(t.share)});
        }
      });
  metrics_.AddCallback(
      "qfix_tenant_weight", "Fair-share weight, by tenant.", Kind::kGauge,
      {"tenant"}, [this](std::vector<Sample>* out) {
        for (const TenantGovernor::TenantStats& t : governor_->Snapshot()) {
          out->push_back({{t.name}, static_cast<double>(t.weight)});
        }
      });
  metrics_.AddCallback(
      "qfix_pool_workers", "Workers of the shared solver pool.", Kind::kGauge,
      {}, [this](std::vector<Sample>* out) {
        out->push_back({{}, static_cast<double>(
                                pool_ != nullptr ? pool_->num_workers() : 0)});
      });
  metrics_.AddCallback(
      "qfix_event_loops", "Event-loop threads sharing the listener.",
      Kind::kGauge, {}, [this](std::vector<Sample>* out) {
        out->push_back({{}, static_cast<double>(options_.event_loop_threads)});
      });
  metrics_.AddCallback(
      "qfix_uptime_seconds", "Seconds since Start().", Kind::kGauge, {},
      [this](std::vector<Sample>* out) {
        out->push_back(
            {{}, running_.load(std::memory_order_relaxed)
                     ? MonotonicSeconds() - started_at_seconds_
                     : 0.0});
      });
  metrics_.AddCallback(
      "qfix_metrics_scrapes_total", "GET /metrics responses served.",
      Kind::kCounter, {}, [this](std::vector<Sample>* out) {
        out->push_back({{}, static_cast<double>(counters_.metrics.load(
                                std::memory_order_relaxed))});
      });
  metrics_.AddCallback(
      "qfix_log_lines_dropped_total",
      "WARN log lines dropped by the --warn-log-per-sec token bucket.",
      Kind::kCounter, {}, [](std::vector<Sample>* out) {
        out->push_back({{}, static_cast<double>(DroppedLogLines())});
      });
  metrics_.AddCallback(
      "qfix_stalls_total", "Watchdog stall events, by kind.", Kind::kCounter,
      {"kind"}, [this](std::vector<Sample>* out) {
        out->push_back(
            {{"admission_starvation"},
             static_cast<double>(stalls_admission_starvation_.load(
                 std::memory_order_relaxed))});
        out->push_back({{"event_loop"},
                        static_cast<double>(stalls_event_loop_.load(
                            std::memory_order_relaxed))});
        out->push_back({{"solve_deadline"},
                        static_cast<double>(stalls_solve_deadline_.load(
                            std::memory_order_relaxed))});
      });
  metrics_.AddCallback(
      "qfix_trace_recorder_events_total",
      "Flight-recorder retention decisions, by kind.", Kind::kCounter,
      {"event"}, [this](std::vector<Sample>* out) {
        if (recorder_ == nullptr) return;
        obs::TraceRecorder::Stats s = recorder_->stats();
        auto add = [out](const char* event, uint64_t v) {
          out->push_back({{event}, static_cast<double>(v)});
        };
        add("evicted", s.evicted_total);
        add("forced", s.forced_total);
        add("recorded", s.recorded_total);
        add("retained", s.retained_total);
        add("sampled_out", s.sampled_out_total);
      });
  metrics_.AddCallback(
      "qfix_trace_buffer_bytes", "Flight-recorder ring occupancy in bytes.",
      Kind::kGauge, {}, [this](std::vector<Sample>* out) {
        if (recorder_ == nullptr) return;
        out->push_back(
            {{}, static_cast<double>(recorder_->stats().buffered_bytes)});
      });
  metrics_.AddCallback(
      "qfix_trace_buffer_traces", "Traces currently in the flight recorder.",
      Kind::kGauge, {}, [this](std::vector<Sample>* out) {
        if (recorder_ == nullptr) return;
        out->push_back(
            {{}, static_cast<double>(recorder_->stats().buffered)});
      });
}

DiagnosisServer::~DiagnosisServer() { Stop(); }

Status DiagnosisServer::Start() {
  QFIX_CHECK(!running_.load()) << "Start() on a running server";

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::Internal(StringPrintf("socket(): %s", strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("not an IPv4 address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Status::InvalidArgument(StringPrintf(
        "bind(%s:%d): %s", options_.host.c_str(), options_.port,
        strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  // Deep backlog: at 10k+ connection scale, connect bursts between two
  // epoll wakeups are normal and must not see SYN drops.
  if (::listen(listen_fd_, 4096) != 0) {
    Status s = Status::Internal(
        StringPrintf("listen(): %s", strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    bound_port_ = ntohs(addr.sin_port);
  }

  pool_ = std::make_unique<exec::ThreadPool>(options_.jobs);
  // The handler pool runs blocking endpoint work off the loop threads.
  // It must be able to saturate the admission gate (so over-capacity
  // bursts reach the gate and shed 429 instead of queueing behind
  // busy workers), hence gate capacity plus slack.
  handler_pool_ =
      std::make_unique<exec::ThreadPool>(std::max(options_.max_inflight + 2,
                                                  4));
  // Fresh cancellation source: a server restarted after Stop() must
  // not inherit the fired token (it would 503 every diagnosis).
  shutdown_ = exec::CancellationSource();
  started_at_seconds_ = MonotonicSeconds();

  // The watchdog is rebuilt per Start(): heartbeats register per
  // event-loop shard below, and RegisterHeartbeat must precede its
  // Start(). Probes that are disabled (threshold 0) cost nothing.
  obs::Watchdog::Options wd;
  wd.loop_stall_seconds = options_.loop_stall_warn_seconds;
  wd.solve_deadline_warn_seconds = options_.solve_deadline_warn_ms / 1e3;
  wd.starvation_window_seconds = options_.admission_starvation_warn_seconds;
  // Poll at a quarter of the tightest enabled threshold (within
  // [10ms, 250ms]) — a 20ms solve deadline is meaningless when the
  // monitor only looks every 250ms.
  double tightest = 0.0;
  for (double t : {wd.loop_stall_seconds, wd.solve_deadline_warn_seconds,
                   wd.starvation_window_seconds}) {
    if (t > 0.0 && (tightest == 0.0 || t < tightest)) tightest = t;
  }
  if (tightest > 0.0) {
    wd.poll_interval_seconds = std::clamp(tightest / 4.0, 0.01, 0.25);
  }
  watchdog_ = std::make_unique<obs::Watchdog>(
      wd, [this](const obs::Watchdog::StallEvent& e) { OnStall(e); });
  watchdog_->SetStarvationProbe([this](std::string* detail) {
    int inflight = governor_->inflight();
    if (inflight < options_.max_inflight) return false;
    *detail = StringPrintf("admission gate pinned at %d/%d items", inflight,
                           options_.max_inflight);
    return true;
  });
  // Beat well inside the stall threshold so one missed wakeup never
  // reads as a stall.
  const double hb_interval =
      options_.loop_stall_warn_seconds > 0.0
          ? std::clamp(options_.loop_stall_warn_seconds / 4.0, 0.01, 0.25)
          : 0.0;

  shards_.clear();
  for (int i = 0; i < options_.event_loop_threads; ++i) {
    auto shard = std::make_unique<LoopShard>();
    shard->index = i;
    Status init = shard->loop.Init();
    if (!init.ok()) {
      shards_.clear();
      watchdog_.reset();
      ::close(listen_fd_);
      listen_fd_ = -1;
      handler_pool_.reset();
      pool_.reset();
      return init;
    }
    LoopShard* s = shard.get();
    s->loop.SetDrainedCheck([s] { return s->conns.empty(); });
    s->acceptor = std::make_unique<Acceptor>(this, s, listen_fd_);
    // Registration runs on the Start() thread, legal because the loop
    // has not started yet (InLoopThread() covers the pre-Run owner).
    s->acceptor->Register();
    if (hb_interval > 0.0) {
      s->hb_handle =
          watchdog_->RegisterHeartbeat(StringPrintf("event_loop_%d", i));
      s->hb_tick = [this, s, hb_interval] {
        watchdog_->Beat(s->hb_handle);
        s->loop.timers().Schedule(hb_interval, s->hb_tick);
      };
      // First beat + schedule from the Start() thread (pre-Run, same
      // legality as the acceptor registration above).
      s->hb_tick();
    }
    shards_.push_back(std::move(shard));
  }
  watchdog_->Start();

  running_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    LoopShard* s = shard.get();
    s->thread = std::thread([s] { s->loop.Run(); });
  }
  LogEvent(LogLevel::kInfo, "server_started")
      .Str("host", options_.host)
      .Int("port", bound_port_)
      .Int("event_loops", options_.event_loop_threads)
      .Int("jobs", options_.jobs)
      .Int("max_inflight", options_.max_inflight)
      .Int("max_connections", options_.max_connections);
  return Status::OK();
}

void DiagnosisServer::Stop() {
  bool was_running = running_.exchange(false);
  // Silence the watchdog before tearing anything down: a draining
  // server legitimately misses heartbeats and overruns deadlines, and
  // those are not stalls worth a WARN. The object itself outlives the
  // handler pool (in-flight handlers still call Begin/EndSolve).
  if (watchdog_ != nullptr) watchdog_->Stop();
  // Fire the token first so queued batch items fail fast and debug
  // sleeps wake; then ask every loop to close its connections (a
  // connection waiting on a dispatched handler survives until the
  // completion flushes its response) and exit once drained.
  shutdown_.Cancel();
  for (auto& shard : shards_) {
    LoopShard* s = shard.get();
    s->loop.Post([s] {
      if (s->acceptor != nullptr) s->acceptor->Shutdown();
      std::vector<Connection*> conns(s->conns.begin(), s->conns.end());
      for (Connection* c : conns) c->OnShutdown();
    });
    s->loop.RequestStop();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  shards_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (was_running) {
    handler_pool_.reset();
    pool_.reset();
    watchdog_.reset();
    LogEvent(LogLevel::kInfo, "server_stopped")
        .Int("port", bound_port_)
        .Uint("requests_total",
              counters_.total.load(std::memory_order_relaxed))
        .Uint("connections_total",
              counters_.connections.load(std::memory_order_relaxed));
  }
}

// ---------------------------------------------------------------------------
// ConnectionHost

const ConnectionHost::Config& DiagnosisServer::conn_config() const {
  return conn_config_;
}

bool DiagnosisServer::shutting_down() const { return shutdown_.cancelled(); }

HttpResponse DiagnosisServer::ErrorResponse(int http_status,
                                            const std::string& code,
                                            const std::string& message) const {
  return JsonError(http_status, code, message);
}

void DiagnosisServer::OnAccept(int fd, LoopShard* shard) {
  int prev = open_connections_.fetch_add(1, std::memory_order_acq_rel);
  if (prev >= options_.max_connections) {
    open_connections_.fetch_sub(1, std::memory_order_acq_rel);
    // Shed at the connection level without reading the request. The
    // reject rides the normal write path (so the response is counted
    // and drains gracefully) but never takes a connection slot and is
    // not a connections_total accept.
    Connection* conn =
        new Connection(fd, &shard->loop, this, shard->index,
                       /*counted=*/false);
    shard->conns.insert(conn);
    conn->BeginReject(
        JsonError(503, "Unavailable", "connection limit reached"));
    return;
  }
  counters_.connections.fetch_add(1, std::memory_order_relaxed);
  Connection* conn = new Connection(fd, &shard->loop, this, shard->index,
                                    /*counted=*/true);
  shard->conns.insert(conn);
  conn->Begin();
}

void DiagnosisServer::OnConnectionClosed(Connection* conn) {
  if (conn->counted()) {
    open_connections_.fetch_sub(1, std::memory_order_acq_rel);
  }
  shards_[static_cast<size_t>(conn->loop_index())]->conns.erase(conn);
  delete conn;
}

void DiagnosisServer::CountResponse(int http_status) {
  // Every answered request counts, including protocol errors the
  // parser rejected — error rates derived from /v1/stats stay
  // consistent (errors <= total).
  counters_.total.fetch_add(1, std::memory_order_relaxed);
  if (http_status == 429) {
    counters_.shed.fetch_add(1, std::memory_order_relaxed);
  }
  if (http_status >= 400 && http_status < 500) {
    counters_.err4xx.fetch_add(1, std::memory_order_relaxed);
  } else if (http_status >= 500) {
    counters_.err5xx.fetch_add(1, std::memory_order_relaxed);
  }
}

void DiagnosisServer::RecordWritePhase(double seconds) {
  phase_write_->Observe(seconds);
}

void DiagnosisServer::Offload(std::function<HttpResponse()> handler,
                              std::function<void(HttpResponse)> done) {
  handler_pool_->Submit(
      [handler = std::move(handler), done = std::move(done)] {
        done(handler());
      });
}

bool DiagnosisServer::HandleRequest(HttpRequest request, HttpResponse* out,
                                    std::function<void(HttpResponse)> done) {
  const std::string path(request.path());
  if (path == "/v1/healthz") {
    counters_.health.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "GET") {
      *out = JsonError(405, "MethodNotAllowed", "use GET");
      return true;
    }
    *out = HandleHealthz();
    return true;
  }
  if (path == "/v1/stats") {
    counters_.stats.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "GET") {
      *out = JsonError(405, "MethodNotAllowed", "use GET");
      return true;
    }
    *out = HandleStats();
    return true;
  }
  if (path == "/metrics") {
    counters_.metrics.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "GET") {
      *out = JsonError(405, "MethodNotAllowed", "use GET");
      return true;
    }
    *out = HandleMetrics();
    return true;
  }
  if (path == "/v1/datasets") {
    counters_.datasets.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "POST") {
      *out = JsonError(405, "MethodNotAllowed", "use POST");
      return true;
    }
    Offload(
        [this, request = std::move(request)] {
          return HandleRegisterDataset(request);
        },
        std::move(done));
    return false;
  }
  if (path == "/v1/diagnose") {
    counters_.diagnose.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "POST") {
      *out = JsonError(405, "MethodNotAllowed", "use POST");
      return true;
    }
    Offload(
        [this, request = std::move(request)] {
          return HandleDiagnose(request);
        },
        std::move(done));
    return false;
  }
  // POST /v1/datasets/{name}/append — the dataset name is the path
  // segment between the registration prefix and the trailing verb.
  constexpr std::string_view kDatasetsPrefix = "/v1/datasets/";
  constexpr std::string_view kAppendSuffix = "/append";
  if (path.size() > kDatasetsPrefix.size() + kAppendSuffix.size() &&
      path.compare(0, kDatasetsPrefix.size(), kDatasetsPrefix) == 0 &&
      path.compare(path.size() - kAppendSuffix.size(), kAppendSuffix.size(),
                   kAppendSuffix) == 0) {
    counters_.append.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "POST") {
      *out = JsonError(405, "MethodNotAllowed", "use POST");
      return true;
    }
    std::string name = path.substr(
        kDatasetsPrefix.size(),
        path.size() - kDatasetsPrefix.size() - kAppendSuffix.size());
    Offload(
        [this, request = std::move(request), name = std::move(name)] {
          return HandleAppend(request, name);
        },
        std::move(done));
    return false;
  }
  if (path == "/v1/debug/traces") {
    counters_.debug.fetch_add(1, std::memory_order_relaxed);
    if (request.method != "GET") {
      *out = JsonError(405, "MethodNotAllowed", "use GET");
      return true;
    }
    // Bypasses the admission gate like healthz/stats: the endpoint
    // exists precisely for when the server is saturated. Offloaded
    // anyway — rendering a few MB of retained traces has no place on a
    // loop thread.
    Offload(
        [this, request = std::move(request)] {
          return HandleDebugTraces(request);
        },
        std::move(done));
    return false;
  }
  if (options_.enable_test_endpoints && path == "/v1/debug/sleep") {
    counters_.debug.fetch_add(1, std::memory_order_relaxed);
    Offload(
        [this, request = std::move(request)] {
          return HandleDebugSleep(request);
        },
        std::move(done));
    return false;
  }
  if (options_.enable_test_endpoints && path == "/v1/debug/payload") {
    counters_.debug.fetch_add(1, std::memory_order_relaxed);
    Offload(
        [this, request = std::move(request)] {
          return HandleDebugPayload(request);
        },
        std::move(done));
    return false;
  }
  *out = JsonError(404, "NotFound", "unknown endpoint: " + path);
  return true;
}

// ---------------------------------------------------------------------------
// Endpoint handlers

// Baked in by src/CMakeLists.txt; fallbacks cover non-CMake builds.
#ifndef QFIX_VERSION_STRING
#define QFIX_VERSION_STRING "dev"
#endif
#ifndef QFIX_BUILD_TYPE
#define QFIX_BUILD_TYPE "unknown"
#endif
#ifndef QFIX_SANITIZE_CONFIG
#define QFIX_SANITIZE_CONFIG "OFF"
#endif

HttpResponse DiagnosisServer::HandleHealthz() {
  JsonWriter w;
  w.BeginObject();
  w.Key("status");
  w.String("ok");
  w.Key("datasets");
  w.Uint(registry_.size());
  w.Key("uptime_seconds");
  w.Double(MonotonicSeconds() - started_at_seconds_);
  // Build info: lets fleet tooling tell ASan/TSan/Release binaries
  // apart when triaging a misbehaving replica.
  w.Key("build");
  w.BeginObject();
  w.Key("version");
  w.String(QFIX_VERSION_STRING);
  w.Key("compiler");
  w.String(__VERSION__);
  w.Key("build_type");
  w.String(QFIX_BUILD_TYPE);
  w.Key("sanitize");
  w.String(QFIX_SANITIZE_CONFIG);
  w.EndObject();
  w.EndObject();
  HttpResponse out;
  out.body = w.str();
  return out;
}

HttpResponse DiagnosisServer::HandleMetrics() {
  HttpResponse out;
  out.headers.emplace_back("Content-Type",
                           "text/plain; version=0.0.4; charset=utf-8");
  out.body = metrics_.RenderPrometheus();
  return out;
}

HttpResponse DiagnosisServer::HandleStats() {
  Stats s = stats();
  JsonWriter w;
  w.BeginObject();
  w.Key("requests");
  w.BeginObject();
  w.Key("total");
  w.Uint(s.requests_total);
  w.Key("datasets");
  w.Uint(s.requests_datasets);
  w.Key("append");
  w.Uint(s.requests_append);
  w.Key("diagnose");
  w.Uint(s.requests_diagnose);
  w.Key("healthz");
  w.Uint(s.requests_health);
  w.Key("stats");
  w.Uint(s.requests_stats);
  w.Key("metrics");
  w.Uint(s.requests_metrics);
  w.Key("debug");
  w.Uint(s.requests_debug);
  w.Key("shed_429");
  w.Uint(s.shed_429);
  w.Key("errors_4xx");
  w.Uint(s.errors_4xx);
  w.Key("errors_5xx");
  w.Uint(s.errors_5xx);
  w.Key("connections");
  w.Uint(s.connections_total);
  w.Key("items");
  w.Uint(s.items_total);
  w.Key("cached_hits");
  w.Uint(s.cached_hits);
  w.EndObject();
  w.Key("cache");
  w.BeginObject();
  w.Key("enabled");
  w.Bool(s.cache_enabled);
  w.Key("hits");
  w.Uint(s.cache.hits);
  w.Key("misses");
  w.Uint(s.cache.misses);
  w.Key("coalesced");
  w.Uint(s.cache.coalesced);
  w.Key("inserts");
  w.Uint(s.cache.inserts);
  w.Key("evictions");
  w.Uint(s.cache.evictions);
  w.Key("invalidations");
  w.Uint(s.cache.invalidations);
  w.Key("bytes");
  w.Uint(s.cache.bytes);
  w.Key("entries");
  w.Uint(s.cache.entries);
  w.Key("capacity_bytes");
  w.Uint(s.cache.capacity_bytes);
  w.EndObject();
  w.Key("latency");
  w.BeginObject();
  w.Key("count");
  w.Uint(s.latency.count);
  w.Key("p50_ms");
  w.Double(s.latency.p50 * 1e3);
  w.Key("p90_ms");
  w.Double(s.latency.p90 * 1e3);
  w.Key("p99_ms");
  w.Double(s.latency.p99 * 1e3);
  w.Key("max_ms");
  w.Double(s.latency.max * 1e3);
  w.EndObject();
  w.Key("queue");
  w.BeginObject();
  w.Key("inflight");
  w.Int(s.inflight);
  w.Key("capacity");
  w.Int(s.inflight_capacity);
  w.EndObject();
  w.Key("registry");
  w.BeginObject();
  w.Key("datasets");
  w.Uint(s.registry.datasets);
  w.Key("bytes");
  w.Uint(s.registry.bytes);
  w.Key("capacity_bytes");
  w.Uint(s.registry.capacity_bytes);
  w.Key("evictions");
  w.Uint(s.registry.evictions);
  w.Key("ttl_evictions");
  w.Uint(s.registry.ttl_evictions);
  w.EndObject();
  w.Key("ingest");
  w.BeginObject();
  w.Key("appends");
  w.Uint(s.registry.appends);
  w.Key("chunks");
  w.Uint(s.registry.chunks);
  w.Key("appended_queries");
  w.Uint(s.appended_queries);
  w.Key("prefix_hits");
  w.Uint(s.encoding_cache.hits);
  w.Key("prefix_misses");
  w.Uint(s.encoding_cache.misses);
  w.Key("prefix_computes");
  w.Uint(s.encoding_cache.computes);
  w.Key("encoding_cache_enabled");
  w.Bool(s.encoding_cache_enabled);
  w.Key("encoding_cache_bytes");
  w.Uint(s.encoding_cache.bytes);
  w.Key("encoding_cache_entries");
  w.Uint(s.encoding_cache.entries);
  w.Key("surviving_cache_bytes");
  w.Uint(s.surviving_cache_bytes);
  w.EndObject();
  w.Key("tenants");
  w.BeginObject();
  for (const TenantGovernor::TenantStats& t : s.tenants) {
    w.Key(t.name);
    w.BeginObject();
    w.Key("weight");
    w.Int(t.weight);
    w.Key("share");
    w.Int(t.share);
    w.Key("inflight");
    w.Int(t.inflight);
    w.Key("requests");
    w.Uint(t.requests);
    w.Key("shed_429");
    w.Uint(t.shed_429);
    w.Key("cached_hits");
    w.Uint(t.cached_hits);
    w.Key("items");
    w.Uint(t.items);
    w.Key("cache_bytes");
    w.Uint(cache_ != nullptr ? cache_->TenantBytes(t.name) : 0);
    w.Key("latency");
    w.BeginObject();
    w.Key("count");
    w.Uint(t.latency.count);
    w.Key("p50_ms");
    w.Double(t.latency.p50 * 1e3);
    w.Key("p90_ms");
    w.Double(t.latency.p90 * 1e3);
    w.Key("p99_ms");
    w.Double(t.latency.p99 * 1e3);
    w.Key("max_ms");
    w.Double(t.latency.max * 1e3);
    w.EndObject();
    w.EndObject();
  }
  w.EndObject();
  w.Key("pool_workers");
  w.Int(pool_ != nullptr ? pool_->num_workers() : 0);
  w.Key("uptime_seconds");
  w.Double(s.uptime_seconds);
  w.Key("metrics_scrapes_total");
  w.Uint(s.metrics_scrapes_total);
  w.Key("trace_recorder");
  w.BeginObject();
  w.Key("enabled");
  w.Bool(recorder_ != nullptr);
  w.Key("recorded");
  w.Uint(s.trace_recorder.recorded_total);
  w.Key("retained");
  w.Uint(s.trace_recorder.retained_total);
  w.Key("sampled_out");
  w.Uint(s.trace_recorder.sampled_out_total);
  w.Key("forced");
  w.Uint(s.trace_recorder.forced_total);
  w.Key("evicted");
  w.Uint(s.trace_recorder.evicted_total);
  w.Key("buffered");
  w.Uint(s.trace_recorder.buffered);
  w.Key("buffered_bytes");
  w.Uint(s.trace_recorder.buffered_bytes);
  w.EndObject();
  w.Key("stalls");
  w.BeginObject();
  w.Key("event_loop");
  w.Uint(s.stalls_event_loop);
  w.Key("solve_deadline");
  w.Uint(s.stalls_solve_deadline);
  w.Key("admission_starvation");
  w.Uint(s.stalls_admission_starvation);
  w.EndObject();
  w.Key("log_lines_dropped");
  w.Uint(DroppedLogLines());
  w.EndObject();
  HttpResponse out;
  out.body = w.str();
  return out;
}

HttpResponse DiagnosisServer::HandleRegisterDataset(
    const HttpRequest& request) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) return StatusError(400, doc.status());

  auto name = doc->RequiredString("name");
  if (!name.ok()) return StatusError(400, name.status());
  auto log_sql = doc->RequiredString("log_sql");
  if (!log_sql.ok()) return StatusError(400, log_sql.status());

  const JsonValue* d0_csv = doc->Find("d0_csv");
  const JsonValue* d0_snapshot = doc->Find("d0_snapshot");
  const JsonValue* d0 = d0_csv != nullptr ? d0_csv : d0_snapshot;
  if ((d0_csv != nullptr) == (d0_snapshot != nullptr) || !d0->is_string()) {
    return JsonError(400, "InvalidArgument",
                     "exactly one of 'd0_csv' or 'd0_snapshot' must be "
                     "given as a string");
  }
  std::string table = "T";
  if (const JsonValue* t = doc->Find("table")) {
    if (!t->is_string()) {
      return JsonError(400, "InvalidArgument", "'table' must be a string");
    }
    table = t->AsString();
  }

  auto registered = registry_.Register(*name, d0->AsString(), table,
                                       *log_sql);
  if (!registered.ok()) {
    // A full registry is back-pressure (free a name or replace one),
    // not a malformed request.
    return StatusError(
        registered.status().IsResourceExhausted() ? 429 : 400,
        registered.status());
  }

  const Dataset& ds = **registered;
  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String(ds.name);
  w.Key("table");
  w.String(ds.d0().table_name());
  w.Key("attrs");
  w.Uint(ds.d0().schema().num_attrs());
  w.Key("tuples");
  w.Uint(ds.d0().NumSlots());
  w.Key("queries");
  w.Uint(ds.log.size());
  w.EndObject();
  HttpResponse out;
  out.body = w.str();
  return out;
}

HttpResponse DiagnosisServer::HandleAppend(const HttpRequest& request,
                                           std::string name) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) return StatusError(400, doc.status());
  auto log_sql = doc->RequiredString("log_sql");
  if (!log_sql.ok()) return StatusError(400, log_sql.status());

  auto appended =
      registry_.Append(name, *log_sql, options_.max_append_queries);
  if (!appended.ok()) {
    const Status& s = appended.status();
    // Atomic by contract: any failure left the registered version
    // untouched, so the error code is all the caller needs.
    int http = 400;
    if (s.IsNotFound()) {
      http = 404;
    } else if (s.IsResourceExhausted()) {
      http = 413;  // the append body exceeds this server's limits
    } else if (s.IsAborted()) {
      http = 409;  // lost the race with a concurrent re-registration
    } else if (!s.IsInvalidArgument()) {
      http = 500;
    }
    return StatusError(http, s);
  }

  const Dataset& ds = **appended;
  // An append seals the base's tail, so the new version's mutable tail
  // is exactly the queries this request added.
  const uint64_t added =
      static_cast<uint64_t>(ds.log.size() - ds.tail_begin());
  counters_.appended_queries.fetch_add(added, std::memory_order_relaxed);
  // Gauge, not a counter: the report-cache bytes of this dataset that
  // survived the append thanks to prefix-aware keys.
  counters_.surviving_cache_bytes.store(
      cache_ != nullptr ? cache_->DatasetBytes(ds.name) : 0,
      std::memory_order_relaxed);

  JsonWriter w;
  w.BeginObject();
  w.Key("name");
  w.String(ds.name);
  w.Key("version");
  w.Uint(ds.version);
  w.Key("queries");
  w.Uint(ds.log.size());
  w.Key("appended");
  w.Uint(added);
  w.Key("chunks");
  w.Uint(ds.chunks.size());
  w.EndObject();
  HttpResponse out;
  out.body = w.str();
  return out;
}

HttpResponse DiagnosisServer::HandleDiagnose(const HttpRequest& request) {
  // The connection layer already sanitized (or minted) X-Request-Id,
  // so the trace id below matches the response header byte-for-byte.
  const std::string* rid = request.FindHeader("X-Request-Id");
  obs::TraceContext trace(rid != nullptr ? *rid : std::string());
  std::string tenant;
  std::string dataset;
  HttpResponse out = DiagnoseInner(request, trace, &tenant, &dataset);
  // Tail-based retention: the outcome is only known now, at
  // completion. Shed and errored requests are always kept; ok traces
  // face the sampler (and a slowness upgrade) inside the recorder.
  obs::TraceOutcome outcome = obs::TraceOutcome::kOk;
  if (out.status == 429) {
    outcome = obs::TraceOutcome::kShed;
  } else if (out.status >= 400) {
    outcome = obs::TraceOutcome::kError;
  }
  RecordTrace(trace, outcome, out.status, trace.ElapsedSeconds(), tenant,
              dataset);
  return out;
}

HttpResponse DiagnosisServer::DiagnoseInner(const HttpRequest& request,
                                            obs::TraceContext& trace,
                                            std::string* primary_tenant,
                                            std::string* primary_dataset) {
  size_t sp_parse = trace.BeginSpan("parse");

  auto doc = ParseJson(request.body);
  if (!doc.ok()) return StatusError(400, doc.status());
  auto with_timings = doc->BoolOr("timings", false);
  if (!with_timings.ok()) return StatusError(400, with_timings.status());

  // One request is either a single diagnosis object or {"items":[...]}.
  std::vector<const JsonValue*> item_docs;
  bool batched = false;
  if (const JsonValue* items = doc->Find("items")) {
    if (!items->is_array() || items->AsArray().empty()) {
      return JsonError(400, "InvalidArgument",
                       "'items' must be a non-empty array");
    }
    if (items->AsArray().size() > static_cast<size_t>(options_.max_items)) {
      return JsonError(413, "ResourceExhausted",
                       StringPrintf("'items' has %zu entries; this server "
                                    "accepts at most %d per request",
                                    items->AsArray().size(),
                                    options_.max_items));
    }
    batched = true;
    for (const JsonValue& item : items->AsArray()) {
      if (!item.is_object()) {
        return JsonError(400, "InvalidArgument",
                         "every item must be an object");
      }
      item_docs.push_back(&item);
    }
  } else {
    item_docs.push_back(&*doc);
  }

  // Decode every item before admitting: malformed requests must not
  // occupy a slot.
  std::vector<DiagnoseItem> decoded;
  decoded.reserve(item_docs.size());
  for (size_t i = 0; i < item_docs.size(); ++i) {
    const JsonValue& item = *item_docs[i];
    auto ds_name = item.RequiredString("dataset");
    if (!ds_name.ok()) return StatusError(400, ds_name.status());
    DiagnoseItem di;
    di.dataset = registry_.Get(*ds_name);
    if (di.dataset == nullptr) {
      return JsonError(404, "NotFound",
                       StringPrintf("item %zu: dataset '%s' is not "
                                    "registered",
                                    i, ds_name->c_str()));
    }
    auto complaints_csv = item.RequiredString("complaints_csv");
    if (!complaints_csv.ok()) return StatusError(400, complaints_csv.status());
    auto complaints =
        io::ComplaintsFromCsv(*complaints_csv, di.dataset->d0().schema());
    if (!complaints.ok()) return StatusError(400, complaints.status());
    di.complaints = std::move(complaints).value();
    if (di.complaints.empty()) {
      return JsonError(400, "InvalidArgument",
                       StringPrintf("item %zu: complaint set is empty", i));
    }
    auto denoise = item.BoolOr("denoise", false);
    if (!denoise.ok()) return StatusError(400, denoise.status());
    di.denoise = *denoise;
    if (di.denoise) {
      // Denoise at decode time so the cache key hashes the complaint
      // set that is actually diagnosed.
      di.complaints =
          provenance::DenoiseComplaints(di.complaints, di.dataset->dirty)
              .kept;
    }
    auto k = item.NumberOr("k", 1.0);
    if (!k.ok()) return StatusError(400, k.status());
    if (*k < 0.0 || *k > 1000.0 || *k != static_cast<int>(*k)) {
      return JsonError(400, "InvalidArgument",
                       "'k' must be an integer in [0, 1000]");
    }
    auto basic = item.BoolOr("basic", false);
    if (!basic.ok()) return StatusError(400, basic.status());
    di.k = *basic ? 0 : static_cast<int>(*k);
    auto time_limit =
        item.NumberOr("time_limit_seconds", options_.max_time_limit_seconds);
    if (!time_limit.ok()) return StatusError(400, time_limit.status());
    di.time_limit_seconds =
        std::min(*time_limit, options_.max_time_limit_seconds);
    if (di.time_limit_seconds <= 0.0) {
      di.time_limit_seconds = options_.max_time_limit_seconds;
    }
    decoded.push_back(std::move(di));
  }
  trace.EndSpan(sp_parse);

  // The distinct tenants this request touches (items are <= max_items;
  // a linear scan beats a map at that size).
  std::vector<std::string> tenants;
  for (const DiagnoseItem& di : decoded) {
    std::string tenant(TenantOf(di.dataset->name));
    if (std::find(tenants.begin(), tenants.end(), tenant) == tenants.end()) {
      tenants.push_back(std::move(tenant));
    }
  }
  // Attribution for the retained trace: the first item speaks for the
  // request (a batch can span tenants, but one label is what the
  // flight-recorder filter needs).
  *primary_tenant = tenants.front();
  *primary_dataset = decoded.front().dataset->name;
  for (const std::string& tenant : tenants) {
    governor_->CountRequest(tenant);
  }

  // Build the zero-copy batch: every item shares the registered
  // snapshot by reference (no Dataset deep copy, see cache/snapshot.h).
  std::vector<qfixcore::BatchItem> batch;
  batch.reserve(decoded.size());
  for (DiagnoseItem& di : decoded) {
    qfixcore::BatchItem item;
    item.data = cache::Snapshot(di.dataset);
    item.complaints = di.complaints;
    item.options.time_limit_seconds = di.time_limit_seconds;
    // Share the server's pool with the inner solves: no per-request
    // thread churn (the MilpOptions/BatchOptions caller-owned hooks).
    // The shutdown token reaches the solver's node loop too, so Stop()
    // interrupts running searches instead of waiting out their budget.
    item.options.milp.pool = pool_.get();
    item.options.milp.cancel = shutdown_.token();
    // Solver-boundary tracing: the engine opens "encode"/"solve" spans
    // itself (it owns that split) and the MILP search hangs
    // presolve/root_lp/node_batch/incumbent children off them.
    // TraceContext is thread-safe, so concurrent batch items may
    // record into it. Runtime-only wiring, never part of cache keys.
    item.options.milp.trace = &trace;
    // Prefix reuse for appended datasets: the engine starts encoding
    // from the memoized chunk-prefix replay instead of re-walking the
    // whole log (no-op for unchunked datasets or a null cache).
    item.options.encoding_cache = encoding_cache_.get();
    item.k = di.k;
    batch.push_back(std::move(item));
  }

  // Consult the report cache before touching the admission gate or the
  // pool: a hit answers with the byte-identical cached report and does
  // no solver work. A cold miss takes singleflight leadership —
  // concurrent identical requests block on our solve instead of
  // repeating it — which this request must settle (publish or abandon)
  // on every exit path below.
  struct ItemPlan {
    /// Non-null: serve from cache (shared with the cache entry — the
    /// report bytes are referenced, never copied).
    std::shared_ptr<const cache::CachedReport> cached;
    bool lead = false;                  // we own Publish/Abandon
    std::optional<cache::CacheKey> key;
    size_t dup_of = SIZE_MAX;           // identical item in this
                                        // request (solve once)
  };
  std::vector<ItemPlan> plans(batch.size());
  size_t solves = 0;
  size_t sp_cache = trace.BeginSpan("cache");
  if (cache_ == nullptr) {
    solves = batch.size();
  } else {
    for (size_t i = 0; i < batch.size(); ++i) {
      plans[i].key = qfixcore::ItemCacheKey(batch[i]);
    }
    // Acquire lookups/leaderships in globally sorted key order. A
    // request holds several leaderships at once while later lookups may
    // block on other requests' leaders; without a total acquisition
    // order, two requests leading each other's keys in opposite orders
    // would deadlock. Sorted acquisition means every wait targets a key
    // strictly greater than anything the waiter holds — no cycles.
    std::vector<size_t> order(batch.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    auto key_less = [&](size_t a, size_t b) {
      const cache::CacheKey& ka = *plans[a].key;
      const cache::CacheKey& kb = *plans[b].key;
      if (ka.dataset != kb.dataset) return ka.dataset < kb.dataset;
      if (ka.version != kb.version) return ka.version < kb.version;
      return ka.request_hash < kb.request_hash;
    };
    std::stable_sort(order.begin(), order.end(), key_less);
    for (size_t pos = 0; pos < order.size(); ++pos) {
      size_t i = order[pos];
      ItemPlan& plan = plans[i];
      // A duplicate of an item this request already leads must not
      // FindOrLead again — it would block on its own request's solve.
      // Equal keys are adjacent after sorting.
      if (pos > 0 && *plans[order[pos - 1]].key == *plan.key) {
        size_t prev = order[pos - 1];
        plan.dup_of =
            plans[prev].dup_of != SIZE_MAX ? plans[prev].dup_of : prev;
        continue;
      }
      cache::ReportCache::Outcome found =
          cache_->FindOrLead(*plan.key, shutdown_.token());
      if (found.value != nullptr) {
        plan.cached = std::move(found.value);
        counters_.cached_hits.fetch_add(1, std::memory_order_relaxed);
        governor_->CountCachedHit(TenantOf(plan.key->dataset));
        continue;
      }
      plan.lead = found.lead;
      ++solves;
    }
  }
  trace.EndSpan(sp_cache);
  auto abandon_leads = [&]() {
    for (const ItemPlan& plan : plans) {
      if (plan.lead) cache_->Abandon(*plan.key);
    }
  };

  // Placeholder status for slots served from the cache (never rendered:
  // the cached path renders the report string instead).
  std::vector<Result<qfixcore::Repair>> results(
      batch.size(),
      Result<qfixcore::Repair>(Status::Internal("served from cache")));
  std::vector<std::string> reports(batch.size());
  size_t sp_admission = trace.BeginSpan("admission");
  if (solves > 0) {
    // Admission is counted in batch items (one request can fan out
    // items[]); cache hits took no slot. Over capacity — global room,
    // or another tenant's guaranteed share — shed rather than queue,
    // releasing any singleflight leadership first. The per-tenant
    // weights are the solve counts of this request's items, so the
    // governor bounds solver work, not sockets.
    std::vector<std::pair<std::string, int>> wants;
    for (size_t i = 0; i < batch.size(); ++i) {
      if (plans[i].cached != nullptr || plans[i].dup_of != SIZE_MAX) continue;
      std::string tenant(TenantOf(decoded[i].dataset->name));
      auto it = std::find_if(wants.begin(), wants.end(),
                             [&](const auto& w) { return w.first == tenant; });
      if (it == wants.end()) {
        wants.emplace_back(std::move(tenant), 1);
      } else {
        ++it->second;
      }
    }
    TenantGovernor::Ticket ticket;
    if (!governor_->TryAcquire(wants, &ticket)) {
      abandon_leads();
      for (const auto& [tenant, count] : wants) {
        (void)count;
        governor_->CountShed(tenant);
      }
      return JsonError(429, "OverCapacity",
                       StringPrintf("diagnosis queue is full (%zu items "
                                    "over %d slots)",
                                    solves, options_.max_inflight));
    }
    if (shutdown_.cancelled()) {
      abandon_leads();
      return JsonError(503, "ShuttingDown", "server is shutting down");
    }
    counters_.items.fetch_add(solves, std::memory_order_relaxed);
    for (const auto& [tenant, count] : wants) {
      governor_->CountItems(tenant, static_cast<uint64_t>(count));
    }
    trace.EndSpan(sp_admission);

    std::vector<qfixcore::BatchItem> to_solve;
    std::vector<size_t> solve_index;
    to_solve.reserve(solves);
    for (size_t i = 0; i < batch.size(); ++i) {
      if (plans[i].cached == nullptr && plans[i].dup_of == SIZE_MAX) {
        to_solve.push_back(batch[i]);
        solve_index.push_back(i);
      }
    }

    qfixcore::BatchOptions batch_options;
    batch_options.pool = pool_.get();
    batch_options.cancel = shutdown_.token();
    // Note: no report_cache here — this request already holds the
    // singleflight leadership for its keys and publishes below. The
    // server keeps its own integration (instead of reusing
    // BatchOptions::report_cache) because hits must bypass the
    // admission gate and splice the cached report bytes verbatim,
    // neither of which the library path can know about.
    qfixcore::BatchDiagnoser diagnoser(batch_options);
    // The watchdog flags this solve — by request id, while it is still
    // running — if it overruns --solve-deadline-warn-ms, and
    // force-retains its trace.
    const uint64_t solve_token =
        watchdog_ != nullptr ? watchdog_->BeginSolve(trace.request_id()) : 0;
    std::vector<Result<qfixcore::Repair>> solved = diagnoser.Run(to_solve);
    if (watchdog_ != nullptr) watchdog_->EndSolve(solve_token);

    // Per-item "encode"/"solve" spans (and their solver-internal
    // children) were recorded by the engine during Run(); here only the
    // scrape-time counters remain to accumulate.
    for (size_t s = 0; s < solved.size(); ++s) {
      if (!solved[s].ok()) continue;
      const auto& st = solved[s]->stats;
      solver_nodes_total_->Inc(static_cast<uint64_t>(st.solver_nodes));
      solver_lp_iterations_total_->Inc(
          static_cast<uint64_t>(st.lp_iterations));
      solver_incumbent_updates_total_->Inc(
          static_cast<uint64_t>(st.incumbent_updates));
      encoder_constraints_total_->Inc(
          static_cast<uint64_t>(st.num_constraints));
      encoder_variables_total_->Inc(static_cast<uint64_t>(st.num_vars));
      if (st.prefix_reused) encoder_prefix_reused_total_->Inc();
    }

    for (size_t s = 0; s < solved.size(); ++s) {
      size_t i = solve_index[s];
      if (solved[s].ok()) {
        reports[i] = qfixcore::RepairToJson(
            *solved[s], batch[i].data->log, batch[i].data->d0(),
            batch[i].data->dirty, batch[i].complaints);
        // Memoize only proven-optimal repairs: a limit-truncated
        // feasible incumbent depends on this request's budget and must
        // not be served to callers with bigger ones.
        if (plans[i].lead && solved[s]->stats.optimal) {
          cache::CachedReport cached;
          cached.report_json = reports[i];
          cached.payload =
              std::make_shared<const qfixcore::Repair>(*solved[s]);
          cache_->Publish(*plans[i].key, std::move(cached));
          plans[i].lead = false;
        }
      }
      if (plans[i].lead) {
        cache_->Abandon(*plans[i].key);
        plans[i].lead = false;
      }
      results[i] = std::move(solved[s]);
    }
  } else {
    // All items were cache hits (or duplicates of hits): the request
    // still reports zero-length admission/encode/solve phases so the
    // timings shape is uniform.
    trace.EndSpan(sp_admission);
    const double now = trace.ElapsedSeconds();
    trace.AddSpan("encode", now, now);
    trace.AddSpan("solve", now, now);
  }
  // Resolve in-request duplicates and belt-and-braces any leadership
  // still held (e.g. an item skipped by cancellation).
  for (size_t i = 0; i < batch.size(); ++i) {
    if (plans[i].dup_of != SIZE_MAX) {
      results[i] = results[plans[i].dup_of];
    }
  }
  abandon_leads();

  // Render: per-item ok/report or ok/error, plus whether the report
  // came from the cache. The report document is the exact report_json
  // rendering — a cache hit splices the original solve's bytes.
  size_t sp_render = trace.BeginSpan("render");
  // Writes the opt-in "timings" block. Closing the render span first
  // keeps sum(phases) <= total_ms: the few bytes of timings JSON
  // serialized after the measurement are the only untracked work.
  auto write_timings = [&](JsonWriter* w) {
    trace.EndSpan(sp_render);
    w->Key("timings");
    w->BeginObject();
    w->Key("request_id");
    w->String(trace.request_id());
    w->Key("total_ms");
    w->Double(trace.ElapsedSeconds() * 1e3);
    w->Key("phases");
    w->BeginArray();
    for (const obs::TraceSpan& span : trace.spans()) {
      w->BeginObject();
      w->Key("phase");
      w->String(span.phase);
      w->Key("start_ms");
      w->Double(span.start_seconds * 1e3);
      w->Key("ms");
      w->Double(span.DurationSeconds() * 1e3);
      // Index of the enclosing span in this array; top-level spans
      // omit it.
      if (span.parent >= 0) {
        w->Key("parent");
        w->Int(span.parent);
      }
      w->EndObject();
    }
    w->EndArray();
    w->EndObject();
  };

  auto render_item = [&](size_t i, JsonWriter* w, bool include_timings) {
    const ItemPlan& plan = plans[i];
    // Duplicates read through the item that did the lookup/solve.
    const size_t src = plan.dup_of != SIZE_MAX ? plan.dup_of : i;
    bool cached = plans[src].cached != nullptr;
    const std::string& report =
        cached ? plans[src].cached->report_json : reports[src];
    bool ok = cached || results[i].ok();
    w->BeginObject();
    w->Key("dataset");
    w->String(decoded[i].dataset->name);
    w->Key("ok");
    w->Bool(ok);
    w->Key("cached");
    w->Bool(cached);
    if (ok) {
      w->Key("report");
      w->Raw(report);
    } else {
      w->Key("error");
      w->BeginObject();
      w->Key("code");
      w->String(StatusCodeToString(results[i].status().code()));
      w->Key("message");
      w->String(results[i].status().message());
      w->EndObject();
    }
    if (include_timings) write_timings(w);
    w->EndObject();
  };

  JsonWriter w;
  if (batched) {
    w.BeginObject();
    w.Key("results");
    w.BeginArray();
    for (size_t i = 0; i < batch.size(); ++i) {
      render_item(i, &w, /*include_timings=*/false);
    }
    w.EndArray();
    if (*with_timings) write_timings(&w);
    w.EndObject();
  } else {
    render_item(0, &w, /*include_timings=*/*with_timings);
  }
  if (!*with_timings) trace.EndSpan(sp_render);

  // Only served diagnoses feed the percentiles: healthz/stats pollers
  // and shed 429s run in microseconds and would swamp the sample
  // window, hiding exactly the latency /v1/stats exists to expose.
  // Recorded globally AND per tenant — a slow tenant's solves land in
  // its own recorder, so its p99 never skews another tenant's.
  const double elapsed = trace.ElapsedSeconds();
  latency_.Record(elapsed);
  for (const std::string& tenant : tenants) {
    governor_->RecordLatency(tenant, elapsed);
    // The exemplar pins the request id of the worst recent observation
    // to its bucket, so a latency spike on the dashboard links straight
    // to its retained trace in /v1/debug/traces.
    diagnose_seconds_by_tenant_->WithLabels({tenant})->ObserveWithExemplar(
        elapsed, trace.request_id());
  }
  // Phase histograms count one observation per phase per request: the
  // engine records encode/solve once per batch item (plus refinement
  // rounds), so per-item durations are summed before observing.
  // Solver-internal child spans are trace-only detail.
  {
    double by_phase[6] = {0, 0, 0, 0, 0, 0};
    bool seen[6] = {false, false, false, false, false, false};
    obs::Histogram* hists[6] = {phase_parse_,  phase_cache_, phase_admission_,
                                phase_encode_, phase_solve_, phase_render_};
    for (const obs::TraceSpan& span : trace.spans()) {
      int idx = -1;
      if (span.phase == "parse") {
        idx = 0;
      } else if (span.phase == "cache") {
        idx = 1;
      } else if (span.phase == "admission") {
        idx = 2;
      } else if (span.phase == "encode" || span.phase == "refine_encode") {
        idx = 3;
      } else if (span.phase == "solve" || span.phase == "refine_solve") {
        idx = 4;
      } else if (span.phase == "render") {
        idx = 5;
      }
      if (idx < 0) continue;
      by_phase[idx] += span.DurationSeconds();
      seen[idx] = true;
    }
    for (int i = 0; i < 6; ++i) {
      if (seen[i]) hists[i]->Observe(by_phase[i]);
    }
  }
  if (options_.slow_request_ms > 0.0 &&
      elapsed * 1e3 >= options_.slow_request_ms) {
    slow_requests_total_->Inc();
    LogEvent log(LogLevel::kWarn, "slow_request");
    log.Str("request_id", trace.request_id())
        .Double("total_ms", elapsed * 1e3)
        .Uint("items", batch.size());
    std::string tenant_list;
    for (const std::string& tenant : tenants) {
      if (!tenant_list.empty()) tenant_list += ',';
      tenant_list += tenant;
    }
    log.Str("tenants", tenant_list);
    // Aggregate by phase name: a batch records encode/solve (and
    // solver-internal children) once per item, and one log line must
    // not carry duplicate keys.
    std::vector<std::pair<std::string, double>> phase_ms;
    for (const obs::TraceSpan& span : trace.spans()) {
      auto it = std::find_if(
          phase_ms.begin(), phase_ms.end(),
          [&](const auto& p) { return p.first == span.phase; });
      if (it == phase_ms.end()) {
        phase_ms.emplace_back(span.phase, span.DurationSeconds() * 1e3);
      } else {
        it->second += span.DurationSeconds() * 1e3;
      }
    }
    for (const auto& [phase, ms] : phase_ms) {
      log.Double(phase + "_ms", ms);
    }
  }

  HttpResponse out;
  out.body = w.str();
  return out;
}

namespace {

/// Splits "k=v&k2=v2" into pairs. Values are taken verbatim — every
/// filterable field (tenant, dataset, outcome, numbers) is drawn from
/// [A-Za-z0-9._-], so nothing needs %-decoding.
std::vector<std::pair<std::string, std::string>> ParseQueryParams(
    std::string_view query) {
  std::vector<std::pair<std::string, std::string>> out;
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string_view::npos) amp = query.size();
    std::string_view pair = query.substr(pos, amp - pos);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out.emplace_back(std::string(pair), std::string());
      } else {
        out.emplace_back(std::string(pair.substr(0, eq)),
                         std::string(pair.substr(eq + 1)));
      }
    }
    pos = amp + 1;
  }
  return out;
}

/// Strict full-string double parse; false on trailing garbage.
bool ParseQueryDouble(const std::string& value, double* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(value.c_str(), &end);
  if (errno != 0 || end != value.c_str() + value.size()) return false;
  *out = v;
  return true;
}

}  // namespace

HttpResponse DiagnosisServer::HandleDebugTraces(const HttpRequest& request) {
  obs::TraceRecorder::Filter filter;
  for (const auto& [key, value] : ParseQueryParams(request.query())) {
    if (key == "tenant") {
      filter.tenant = value;
    } else if (key == "dataset") {
      filter.dataset = value;
    } else if (key == "min_duration_ms") {
      double ms = 0.0;
      if (!ParseQueryDouble(value, &ms) || ms < 0.0) {
        return JsonError(400, "InvalidArgument",
                         "'min_duration_ms' must be a non-negative number");
      }
      filter.min_duration_seconds = ms / 1e3;
    } else if (key == "outcome") {
      if (!obs::ParseTraceOutcome(value, &filter.outcome)) {
        return JsonError(400, "InvalidArgument",
                         "'outcome' must be one of ok|slow|error|shed");
      }
      filter.has_outcome = true;
    } else if (key == "limit") {
      double n = 0.0;
      if (!ParseQueryDouble(value, &n) || n < 1.0 || n > 1024.0 ||
          n != static_cast<size_t>(n)) {
        return JsonError(400, "InvalidArgument",
                         "'limit' must be an integer in [1, 1024]");
      }
      filter.limit = static_cast<size_t>(n);
    } else {
      return JsonError(400, "InvalidArgument",
                       "unknown filter '" + key +
                           "' (tenant, dataset, min_duration_ms, outcome, "
                           "limit)");
    }
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("enabled");
  w.Bool(recorder_ != nullptr);
  if (recorder_ != nullptr) {
    obs::TraceRecorder::Stats s = recorder_->stats();
    w.Key("recorder");
    w.BeginObject();
    w.Key("recorded");
    w.Uint(s.recorded_total);
    w.Key("retained");
    w.Uint(s.retained_total);
    w.Key("sampled_out");
    w.Uint(s.sampled_out_total);
    w.Key("forced");
    w.Uint(s.forced_total);
    w.Key("evicted");
    w.Uint(s.evicted_total);
    w.Key("buffered");
    w.Uint(s.buffered);
    w.Key("buffered_bytes");
    w.Uint(s.buffered_bytes);
    w.Key("byte_budget");
    w.Uint(s.byte_budget);
    w.EndObject();
  }
  w.Key("traces");
  w.BeginArray();
  if (recorder_ != nullptr) {
    for (const obs::RetainedTrace& t : recorder_->Snapshot(filter)) {
      w.BeginObject();
      w.Key("request_id");
      w.String(t.request_id);
      w.Key("tenant");
      w.String(t.tenant);
      w.Key("dataset");
      w.String(t.dataset);
      w.Key("endpoint");
      w.String(t.endpoint);
      w.Key("outcome");
      w.String(obs::TraceOutcomeName(t.outcome));
      w.Key("http_status");
      w.Int(t.http_status);
      w.Key("duration_ms");
      w.Double(t.duration_seconds * 1e3);
      w.Key("recorded_unix_seconds");
      w.Double(t.recorded_unix_seconds);
      w.Key("forced");
      w.Bool(t.forced);
      w.Key("retain_reason");
      w.String(t.retain_reason);
      w.Key("spans");
      w.BeginArray();
      for (const obs::TraceSpan& span : t.spans) {
        w.BeginObject();
        w.Key("phase");
        w.String(span.phase);
        w.Key("start_ms");
        w.Double(span.start_seconds * 1e3);
        w.Key("ms");
        w.Double(span.DurationSeconds() * 1e3);
        if (span.parent >= 0) {
          w.Key("parent");
          w.Int(span.parent);
        }
        w.EndObject();
      }
      w.EndArray();
      w.EndObject();
    }
  }
  w.EndArray();
  w.EndObject();
  HttpResponse out;
  out.body = w.str();
  return out;
}

void DiagnosisServer::RecordTrace(const obs::TraceContext& trace,
                                  obs::TraceOutcome outcome, int http_status,
                                  double duration_seconds,
                                  const std::string& tenant,
                                  const std::string& dataset) {
  if (recorder_ == nullptr) return;
  obs::RetainedTrace rt;
  rt.request_id = trace.request_id();
  rt.tenant = tenant;
  rt.dataset = dataset;
  rt.endpoint = "/v1/diagnose";
  rt.outcome = outcome;
  rt.http_status = http_status;
  rt.duration_seconds = duration_seconds;
  // Safe to read spans(): the solve (the only concurrent recorder)
  // joined before the handler returned.
  rt.spans = trace.spans();
  recorder_->Record(std::move(rt));
}

void DiagnosisServer::OnStall(const obs::Watchdog::StallEvent& event) {
  if (event.kind == "event_loop") {
    stalls_event_loop_.fetch_add(1, std::memory_order_relaxed);
  } else if (event.kind == "solve_deadline") {
    stalls_solve_deadline_.fetch_add(1, std::memory_order_relaxed);
  } else {
    stalls_admission_starvation_.fetch_add(1, std::memory_order_relaxed);
  }
  // Pin before the WARN: the offending request may complete while this
  // line renders, and the pin must already be in place when its trace
  // lands in the recorder.
  if (!event.request_id.empty() && recorder_ != nullptr) {
    recorder_->ForceRetain(event.request_id, "stall:" + event.kind);
  }
  LogEvent(LogLevel::kWarn, "stall")
      .Str("kind", event.kind)
      .Str("request_id", event.request_id)
      .Str("detail", event.detail)
      .Double("age_seconds", event.age_seconds);
}

HttpResponse DiagnosisServer::HandleDebugSleep(const HttpRequest& request) {
  if (request.method != "POST") {
    return JsonError(405, "MethodNotAllowed", "use POST");
  }
  auto doc = ParseJson(request.body.empty() ? "{}" : request.body);
  if (!doc.ok()) return StatusError(400, doc.status());
  auto requested = doc->NumberOr("seconds", 0.1);
  if (!requested.ok()) return StatusError(400, requested.status());
  double seconds = std::clamp(*requested, 0.0, 30.0);
  // Optional tenant attribution so tests can exercise fair sharing and
  // per-tenant latency with deterministic service times.
  std::string tenant = "default";
  if (const JsonValue* t = doc->Find("tenant")) {
    if (!t->is_string()) {
      return JsonError(400, "InvalidArgument", "'tenant' must be a string");
    }
    tenant = t->AsString();
  }

  const double start_seconds = MonotonicSeconds();
  governor_->CountRequest(tenant);
  TenantGovernor::Ticket ticket;
  if (!governor_->TryAcquire({{tenant, 1}}, &ticket)) {
    governor_->CountShed(tenant);
    return JsonError(429, "OverCapacity", "diagnosis queue is full");
  }
  Deadline deadline = Deadline::AfterSeconds(seconds);
  while (!deadline.Expired() && !shutdown_.cancelled()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ticket.Release();
  governor_->RecordLatency(tenant, MonotonicSeconds() - start_seconds);
  JsonWriter w;
  w.BeginObject();
  w.Key("slept_seconds");
  w.Double(seconds);
  w.Key("cancelled");
  w.Bool(shutdown_.cancelled());
  w.EndObject();
  HttpResponse out;
  out.body = w.str();
  return out;
}

HttpResponse DiagnosisServer::HandleDebugPayload(const HttpRequest& request) {
  if (request.method != "POST") {
    return JsonError(405, "MethodNotAllowed", "use POST");
  }
  auto doc = ParseJson(request.body.empty() ? "{}" : request.body);
  if (!doc.ok()) return StatusError(400, doc.status());
  auto requested = doc->NumberOr("bytes", 1024.0);
  if (!requested.ok()) return StatusError(400, requested.status());
  size_t n = static_cast<size_t>(
      std::clamp(*requested, 1.0, 8.0 * 1024.0 * 1024.0));
  JsonWriter w;
  w.BeginObject();
  w.Key("payload");
  w.String(std::string(n, 'x'));
  w.EndObject();
  HttpResponse out;
  out.body = w.str();
  return out;
}

DiagnosisServer::Stats DiagnosisServer::stats() const {
  Stats s;
  s.requests_total = counters_.total.load(std::memory_order_relaxed);
  s.requests_datasets = counters_.datasets.load(std::memory_order_relaxed);
  s.requests_append = counters_.append.load(std::memory_order_relaxed);
  s.requests_diagnose = counters_.diagnose.load(std::memory_order_relaxed);
  s.requests_health = counters_.health.load(std::memory_order_relaxed);
  s.requests_stats = counters_.stats.load(std::memory_order_relaxed);
  s.requests_metrics = counters_.metrics.load(std::memory_order_relaxed);
  s.requests_debug = counters_.debug.load(std::memory_order_relaxed);
  s.shed_429 = counters_.shed.load(std::memory_order_relaxed);
  s.errors_4xx = counters_.err4xx.load(std::memory_order_relaxed);
  s.errors_5xx = counters_.err5xx.load(std::memory_order_relaxed);
  s.connections_total = counters_.connections.load(std::memory_order_relaxed);
  s.items_total = counters_.items.load(std::memory_order_relaxed);
  s.cached_hits = counters_.cached_hits.load(std::memory_order_relaxed);
  s.inflight = governor_->inflight();
  s.inflight_capacity = options_.max_inflight;
  s.open_connections = open_connections_.load(std::memory_order_relaxed);
  s.latency = latency_.Take();
  s.cache_enabled = cache_ != nullptr;
  if (cache_ != nullptr) s.cache = cache_->stats();
  s.registry = registry_.stats();
  s.appended_queries =
      counters_.appended_queries.load(std::memory_order_relaxed);
  s.encoding_cache_enabled = encoding_cache_ != nullptr;
  if (encoding_cache_ != nullptr) s.encoding_cache = encoding_cache_->stats();
  s.surviving_cache_bytes =
      counters_.surviving_cache_bytes.load(std::memory_order_relaxed);
  s.tenants = governor_->Snapshot();
  s.uptime_seconds = running_.load(std::memory_order_relaxed)
                         ? MonotonicSeconds() - started_at_seconds_
                         : 0.0;
  s.metrics_scrapes_total =
      counters_.metrics.load(std::memory_order_relaxed);
  if (recorder_ != nullptr) s.trace_recorder = recorder_->stats();
  s.stalls_event_loop = stalls_event_loop_.load(std::memory_order_relaxed);
  s.stalls_solve_deadline =
      stalls_solve_deadline_.load(std::memory_order_relaxed);
  s.stalls_admission_starvation =
      stalls_admission_starvation_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace service
}  // namespace qfix
