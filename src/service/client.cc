#include "service/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/strings.h"
#include "common/timer.h"

namespace qfix {
namespace service {

namespace {

Result<HttpResponse> Roundtrip(const std::string& host, int port,
                               const std::string& request_bytes,
                               double timeout_seconds) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StringPrintf("socket(): %s", strerror(errno)));
  }

  timeval tv;
  tv.tv_sec = 0;
  tv.tv_usec = 200 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  // Non-blocking connect bounded by the caller's timeout — a plain
  // ::connect to a dropped-SYN host would otherwise block for the
  // kernel's full retry period (minutes) regardless of timeout_seconds.
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    Status s = Status::Internal(StringPrintf(
        "connect(%s:%d): %s", host.c_str(), port, strerror(errno)));
    ::close(fd);
    return s;
  }
  if (rc != 0) {
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int ready = ::poll(&pfd, 1,
                       static_cast<int>(timeout_seconds * 1e3));
    int so_error = 0;
    socklen_t so_len = sizeof(so_error);
    if (ready > 0) {
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len);
    }
    if (ready <= 0 || so_error != 0) {
      Status s = ready <= 0
                     ? Status::ResourceExhausted(StringPrintf(
                           "connect(%s:%d) timed out", host.c_str(), port))
                     : Status::Internal(StringPrintf(
                           "connect(%s:%d): %s", host.c_str(), port,
                           strerror(so_error)));
      ::close(fd);
      return s;
    }
  }
  ::fcntl(fd, F_SETFL, flags);

  size_t sent = 0;
  while (sent < request_bytes.size()) {
    ssize_t n = ::send(fd, request_bytes.data() + sent,
                       request_bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Status::Internal(StringPrintf("send(): %s",
                                               strerror(errno)));
      ::close(fd);
      return s;
    }
    sent += static_cast<size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);

  // Connection: close — the response is everything until EOF.
  std::string raw;
  Deadline deadline = Deadline::AfterSeconds(timeout_seconds);
  char buf[8192];
  while (true) {
    if (deadline.Expired()) {
      ::close(fd);
      return Status::ResourceExhausted("HTTP response not received in time");
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      Status s = Status::Internal(StringPrintf("recv(): %s",
                                               strerror(errno)));
      ::close(fd);
      return s;
    }
    if (n == 0) break;
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return ParseHttpResponse(raw);
}

std::string BuildRequest(const char* method, const std::string& host,
                         int port, const std::string& path,
                         const std::string& body) {
  std::string out = StringPrintf("%s %s HTTP/1.1\r\n", method, path.c_str());
  out += StringPrintf("Host: %s:%d\r\n", host.c_str(), port);
  if (!body.empty()) {
    out += "Content-Type: application/json\r\n";
  }
  out += StringPrintf("Content-Length: %zu\r\n", body.size());
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

Result<HttpResponse> HttpPost(const std::string& host, int port,
                              const std::string& path,
                              const std::string& body,
                              double timeout_seconds) {
  return Roundtrip(host, port, BuildRequest("POST", host, port, path, body),
                   timeout_seconds);
}

Result<HttpResponse> HttpGet(const std::string& host, int port,
                             const std::string& path,
                             double timeout_seconds) {
  return Roundtrip(host, port, BuildRequest("GET", host, port, path, ""),
                   timeout_seconds);
}

Result<HostPort> ParseUrl(std::string_view url) {
  std::string_view rest = url;
  const std::string_view scheme = "http://";
  if (rest.substr(0, scheme.size()) == scheme) {
    rest.remove_prefix(scheme.size());
  } else if (rest.find("://") != std::string_view::npos) {
    return Status::InvalidArgument("only http:// URLs are supported");
  }
  // Strip any path suffix.
  size_t slash = rest.find('/');
  if (slash != std::string_view::npos) rest = rest.substr(0, slash);
  size_t colon = rest.rfind(':');
  if (colon == std::string_view::npos || colon + 1 >= rest.size()) {
    return Status::InvalidArgument(
        "URL must name an explicit port: http://HOST:PORT");
  }
  HostPort out;
  out.host = std::string(rest.substr(0, colon));
  std::string port_str(rest.substr(colon + 1));
  char* end = nullptr;
  long port = std::strtol(port_str.c_str(), &end, 10);
  if (end != port_str.c_str() + port_str.size() || port < 1 ||
      port > 65535) {
    return Status::InvalidArgument("invalid port: " + port_str);
  }
  out.port = static_cast<int>(port);
  if (out.host.empty()) {
    return Status::InvalidArgument("URL has an empty host");
  }
  if (out.host == "localhost") out.host = "127.0.0.1";
  return out;
}

}  // namespace service
}  // namespace qfix
