#include "service/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <strings.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/strings.h"
#include "common/timer.h"

namespace qfix {
namespace service {

namespace {

/// Connects with a bounded non-blocking handshake — a plain ::connect
/// to a dropped-SYN host would otherwise block for the kernel's full
/// retry period (minutes) regardless of timeout_seconds.
Result<int> ConnectTo(const std::string& host, int port,
                      double timeout_seconds) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StringPrintf("socket(): %s", strerror(errno)));
  }

  timeval tv;
  tv.tv_sec = 0;
  tv.tv_usec = 200 * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    Status s = Status::Internal(StringPrintf(
        "connect(%s:%d): %s", host.c_str(), port, strerror(errno)));
    ::close(fd);
    return s;
  }
  if (rc != 0) {
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLOUT;
    int ready = ::poll(&pfd, 1,
                       static_cast<int>(timeout_seconds * 1e3));
    int so_error = 0;
    socklen_t so_len = sizeof(so_error);
    if (ready > 0) {
      ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len);
    }
    if (ready <= 0 || so_error != 0) {
      Status s = ready <= 0
                     ? Status::ResourceExhausted(StringPrintf(
                           "connect(%s:%d) timed out", host.c_str(), port))
                     : Status::Internal(StringPrintf(
                           "connect(%s:%d): %s", host.c_str(), port,
                           strerror(so_error)));
      ::close(fd);
      return s;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return fd;
}

Status SendRequest(int fd, const std::string& request_bytes) {
  size_t sent = 0;
  while (sent < request_bytes.size()) {
    ssize_t n = ::send(fd, request_bytes.data() + sent,
                       request_bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(StringPrintf("send(): %s", strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads one Content-Length-framed response (keep-alive framing: the
/// connection stays open, so "read until EOF" is not available).
/// `*got_bytes` reports whether ANY response bytes arrived — the
/// caller's retry logic must distinguish "server closed an idle
/// connection before reading the request" (safe to retry) from "failed
/// mid-response" (the request may have executed; retrying would run it
/// twice).
Result<HttpResponse> ReadFramedResponse(int fd, Deadline deadline,
                                        bool* got_bytes) {
  *got_bytes = false;
  std::string raw;
  size_t head_end = std::string::npos;
  size_t sep = 0;
  size_t need = std::string::npos;
  char buf[8192];
  while (true) {
    if (head_end == std::string::npos) {
      head_end = raw.find("\r\n\r\n");
      sep = 4;
      if (head_end == std::string::npos) {
        head_end = raw.find("\n\n");
        sep = 2;
      }
      if (head_end != std::string::npos) {
        auto head = ParseHttpResponse(raw.substr(0, head_end + sep));
        if (!head.ok()) return head.status();
        size_t body_len = 0;
        for (const auto& [key, value] : head->headers) {
          if (key.size() == 14 &&
              strcasecmp(key.c_str(), "Content-Length") == 0) {
            body_len = static_cast<size_t>(
                std::strtoull(value.c_str(), nullptr, 10));
          }
        }
        need = head_end + sep + body_len;
      }
    }
    if (need != std::string::npos && raw.size() >= need) {
      return ParseHttpResponse(std::string_view(raw).substr(0, need));
    }
    if (deadline.Expired()) {
      return Status::ResourceExhausted("HTTP response not received in time");
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::Internal(StringPrintf("recv(): %s", strerror(errno)));
    }
    if (n == 0) {
      // EOF: with a framed head this is a truncated response; without
      // one the peer closed before answering.
      return Status::Internal("connection closed before a full response");
    }
    raw.append(buf, static_cast<size_t>(n));
    *got_bytes = true;
  }
}

std::string BuildRequest(
    const char* method, const std::string& host, int port,
    const std::string& path, const std::string& body, bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers =
        {}) {
  std::string out = StringPrintf("%s %s HTTP/1.1\r\n", method, path.c_str());
  out += StringPrintf("Host: %s:%d\r\n", host.c_str(), port);
  if (!body.empty()) {
    out += "Content-Type: application/json\r\n";
  }
  out += StringPrintf("Content-Length: %zu\r\n", body.size());
  for (const auto& [name, value] : extra_headers) {
    out += StringPrintf("%s: %s\r\n", name.c_str(), value.c_str());
  }
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += body;
  return out;
}

Result<HttpResponse> Roundtrip(const std::string& host, int port,
                               const std::string& request_bytes,
                               double timeout_seconds) {
  auto fd = ConnectTo(host, port, timeout_seconds);
  if (!fd.ok()) return fd.status();
  Status sent = SendRequest(*fd, request_bytes);
  if (!sent.ok()) {
    ::close(*fd);
    return sent;
  }
  ::shutdown(*fd, SHUT_WR);
  // The server always frames with Content-Length, so the one-shot path
  // shares the keep-alive reader instead of a read-until-EOF twin.
  bool got_bytes = false;
  Result<HttpResponse> response = ReadFramedResponse(
      *fd, Deadline::AfterSeconds(timeout_seconds), &got_bytes);
  ::close(*fd);
  return response;
}

}  // namespace

Result<HttpResponse> HttpPost(
    const std::string& host, int port, const std::string& path,
    const std::string& body, double timeout_seconds,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  return Roundtrip(host, port,
                   BuildRequest("POST", host, port, path, body,
                                /*keep_alive=*/false, extra_headers),
                   timeout_seconds);
}

Result<HttpResponse> HttpGet(const std::string& host, int port,
                             const std::string& path,
                             double timeout_seconds) {
  return Roundtrip(host, port,
                   BuildRequest("GET", host, port, path, "",
                                /*keep_alive=*/false),
                   timeout_seconds);
}

ClientConnection::ClientConnection(std::string host, int port)
    : host_(std::move(host)), port_(port) {}

ClientConnection::~ClientConnection() { CloseSocket(); }

void ClientConnection::CloseSocket() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status ClientConnection::EnsureConnected(double timeout_seconds) {
  if (fd_ >= 0) return Status::OK();
  auto fd = ConnectTo(host_, port_, timeout_seconds);
  if (!fd.ok()) return fd.status();
  fd_ = *fd;
  ++connects_;
  return Status::OK();
}

Result<HttpResponse> ClientConnection::Roundtrip(
    const char* method, const std::string& path, const std::string& body,
    double timeout_seconds,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string request = BuildRequest(method, host_, port_, path, body,
                                     /*keep_alive=*/true, extra_headers);
  Deadline deadline = Deadline::AfterSeconds(timeout_seconds);
  // Two attempts: a reused socket may have been closed by the server
  // (idle timeout, request budget) between requests; the retry runs on
  // a fresh connection.
  for (int attempt = 0; attempt < 2; ++attempt) {
    bool reused = fd_ >= 0;
    QFIX_RETURN_IF_ERROR(EnsureConnected(timeout_seconds));
    Status sent = SendRequest(fd_, request);
    bool got_bytes = false;
    Result<HttpResponse> response =
        sent.ok() ? ReadFramedResponse(fd_, deadline, &got_bytes)
                  : Result<HttpResponse>(sent);
    if (response.ok()) {
      // Honor the server's verdict on persistence.
      bool server_keeps = false;
      for (const auto& [key, value] : response->headers) {
        if (strcasecmp(key.c_str(), "Connection") == 0) {
          server_keeps = strcasecmp(value.c_str(), "keep-alive") == 0;
        }
      }
      if (!server_keeps) CloseSocket();
      return response;
    }
    CloseSocket();
    // Retry only the stale keep-alive race: a *reused* socket that died
    // before ANY response byte arrived (the server closed it between
    // requests without reading this one). Once response bytes flowed —
    // or on a fresh connection — the request may already have executed
    // server-side, and replaying a non-idempotent POST would run it
    // twice.
    if (!reused || got_bytes || deadline.Expired()) return response;
  }
  return Status::Internal("unreachable");
}

Result<HttpResponse> ClientConnection::Post(
    const std::string& path, const std::string& body, double timeout_seconds,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  return Roundtrip("POST", path, body, timeout_seconds, extra_headers);
}

Result<HttpResponse> ClientConnection::Get(const std::string& path,
                                           double timeout_seconds) {
  return Roundtrip("GET", path, "", timeout_seconds, {});
}

Result<HostPort> ParseUrl(std::string_view url) {
  std::string_view rest = url;
  const std::string_view scheme = "http://";
  if (rest.substr(0, scheme.size()) == scheme) {
    rest.remove_prefix(scheme.size());
  } else if (rest.find("://") != std::string_view::npos) {
    return Status::InvalidArgument("only http:// URLs are supported");
  }
  // Strip any path suffix.
  size_t slash = rest.find('/');
  if (slash != std::string_view::npos) rest = rest.substr(0, slash);
  size_t colon = rest.rfind(':');
  if (colon == std::string_view::npos || colon + 1 >= rest.size()) {
    return Status::InvalidArgument(
        "URL must name an explicit port: http://HOST:PORT");
  }
  HostPort out;
  out.host = std::string(rest.substr(0, colon));
  std::string port_str(rest.substr(colon + 1));
  char* end = nullptr;
  long port = std::strtol(port_str.c_str(), &end, 10);
  if (end != port_str.c_str() + port_str.size() || port < 1 ||
      port > 65535) {
    return Status::InvalidArgument("invalid port: " + port_str);
  }
  out.port = static_cast<int>(port);
  if (out.host.empty()) {
    return Status::InvalidArgument("URL has an empty host");
  }
  if (out.host == "localhost") out.host = "127.0.0.1";
  return out;
}

Result<SmokeStats> ConcurrentSmoke(const std::string& host, int port,
                                   int connections,
                                   double timeout_seconds) {
  SmokeStats stats;
  stats.requested = std::max(connections, 0);
  if (stats.requested == 0) return stats;

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not an IPv4 address: " + host);
  }

  struct Probe {
    int fd = -1;
    bool connected = false;
    bool sent = false;
    bool done = false;
    std::string response;
  };
  std::vector<Probe> probes(static_cast<size_t>(stats.requested));
  Deadline deadline = Deadline::AfterSeconds(timeout_seconds);

  // Phase 1: open every socket nonblocking so all handshakes are in
  // flight together, then wait until they are all established (the
  // point of the exercise: the server holds them simultaneously).
  for (Probe& p : probes) {
    p.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
    if (p.fd < 0) {
      p.done = true;
      continue;
    }
    int rc = ::connect(p.fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr));
    if (rc == 0) {
      p.connected = true;
    } else if (errno != EINPROGRESS) {
      ::close(p.fd);
      p.fd = -1;
      p.done = true;
    }
  }
  const std::string request = StringPrintf(
      "GET /v1/healthz HTTP/1.1\r\nHost: %s:%d\r\n"
      "Connection: close\r\n\r\n",
      host.c_str(), port);
  std::vector<pollfd> pfds;
  auto pending = [&] {
    pfds.clear();
    for (Probe& p : probes) {
      if (p.done || p.fd < 0) continue;
      pollfd pfd;
      pfd.fd = p.fd;
      pfd.events = static_cast<short>(p.sent ? POLLIN : POLLOUT);
      pfd.revents = 0;
      pfds.push_back(pfd);
    }
    return !pfds.empty();
  };
  // Wait for every handshake before sending anything: all N sockets
  // are then open against the server at once.
  while (!deadline.Expired()) {
    bool all = true;
    for (const Probe& p : probes) {
      if (!p.done && p.fd >= 0 && !p.connected) all = false;
    }
    if (all) break;
    pfds.clear();
    for (Probe& p : probes) {
      if (p.done || p.fd < 0 || p.connected) continue;
      pollfd pfd;
      pfd.fd = p.fd;
      pfd.events = POLLOUT;
      pfd.revents = 0;
      pfds.push_back(pfd);
    }
    if (pfds.empty()) break;
    int ready = ::poll(pfds.data(), pfds.size(), 100);
    if (ready <= 0) continue;
    for (const pollfd& pfd : pfds) {
      if (pfd.revents == 0) continue;
      for (Probe& p : probes) {
        if (p.fd != pfd.fd) continue;
        int so_error = 0;
        socklen_t so_len = sizeof(so_error);
        ::getsockopt(p.fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len);
        if (so_error != 0) {
          ::close(p.fd);
          p.fd = -1;
          p.done = true;
        } else {
          p.connected = true;
        }
        break;
      }
    }
  }
  for (const Probe& p : probes) {
    if (p.connected) ++stats.connected;
  }

  // Phase 2: healthz on every connection, drain until EOF (the request
  // asks Connection: close), count the 200s.
  while (!deadline.Expired() && pending()) {
    int ready = ::poll(pfds.data(), pfds.size(), 100);
    if (ready <= 0) continue;
    for (const pollfd& pfd : pfds) {
      if (pfd.revents == 0) continue;
      for (Probe& p : probes) {
        if (p.fd != pfd.fd) continue;
        if (!p.sent) {
          ssize_t n = ::send(p.fd, request.data(), request.size(),
                             MSG_NOSIGNAL);
          // A healthz request fits any kernel buffer; treat a short
          // write as failure rather than resuming mid-request.
          if (n == static_cast<ssize_t>(request.size())) {
            p.sent = true;
          } else {
            ::close(p.fd);
            p.fd = -1;
            p.done = true;
          }
          break;
        }
        char buf[4096];
        ssize_t n = ::recv(p.fd, buf, sizeof(buf), 0);
        if (n > 0) {
          p.response.append(buf, static_cast<size_t>(n));
        } else if (n == 0 || (errno != EINTR && errno != EAGAIN &&
                              errno != EWOULDBLOCK)) {
          ::close(p.fd);
          p.fd = -1;
          p.done = true;
        }
        break;
      }
    }
  }
  for (Probe& p : probes) {
    if (p.fd >= 0) ::close(p.fd);
    if (p.response.rfind("HTTP/1.1 200", 0) == 0) ++stats.ok;
  }
  return stats;
}

}  // namespace service
}  // namespace qfix
