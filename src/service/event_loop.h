// EventLoop: the readiness-driven core of the diagnosis server — one
// epoll instance, a hashed timer wheel, and an eventfd wakeup channel,
// all owned by a single thread. Connections register interest in
// read/write readiness and get called back; nothing on the loop thread
// ever blocks on a socket, which is what lets one thread hold 10k+
// concurrent connections where the old thread-per-connection design
// spent a full stack per idle socket.
//
// Threading contract:
//   * Run() is the loop thread. Every EventLoop method EXCEPT Post(),
//     Wake() and RequestStop() must be called on that thread (watcher
//     registration, timer scheduling, ...). QFIX_CHECKed in debug.
//   * Post(fn) is the only cross-thread entry point: it enqueues `fn`
//     under a mutex and writes the eventfd, so solver completions on
//     exec::ThreadPool workers re-arm their connection by posting back
//     onto the loop (the solve-dispatch/wakeup handshake).
//   * Timers belong to the wheel (timers()): coarse 100ms ticks, which
//     is plenty for the second-scale idle/read/write deadlines the
//     server enforces, and O(1) schedule/cancel so 10k idle connections
//     cost 10k wheel entries and nothing else.
//
// Run() exits when RequestStop() has been called AND the drained check
// (SetDrainedCheck) reports no remaining work, so a cooperative Stop()
// can let in-flight solves complete and their responses flush before
// the thread joins.
#ifndef QFIX_SERVICE_EVENT_LOOP_H_
#define QFIX_SERVICE_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace qfix {
namespace service {

/// Readiness callback for one registered file descriptor. `events` is
/// the epoll bitmask (EPOLLIN/EPOLLOUT/EPOLLERR/EPOLLHUP...).
class FdHandler {
 public:
  virtual ~FdHandler() = default;
  virtual void OnEvents(uint32_t events) = 0;
};

/// Hashed timer wheel: `num_slots` buckets of `tick_seconds` each.
/// Schedule/Cancel are O(1); Advance() fires whatever came due. Timers
/// never fire early — entries are bucketed by ceiling, and an entry
/// whose deadline lies beyond the wheel horizon simply takes another
/// lap (it is re-bucketed when its slot comes around). Loop-thread
/// only; callbacks may freely Schedule/Cancel reentrantly.
class TimerWheel {
 public:
  using Callback = std::function<void()>;

  explicit TimerWheel(double tick_seconds = 0.1, size_t num_slots = 512);

  /// Fires `cb` once, no earlier than `delay_seconds` from now.
  /// Returns an id for Cancel(); 0 is never a valid id.
  uint64_t Schedule(double delay_seconds, Callback cb);

  /// Forgets a pending timer. Unknown/fired ids are a no-op, so holders
  /// can cancel unconditionally.
  void Cancel(uint64_t id);

  /// Fires every timer due at `now` (monotonic seconds). Returns the
  /// seconds until the wheel should be advanced again, or a negative
  /// value when no timers are pending.
  double Advance(double now);

  size_t pending() const { return timers_.size(); }

 private:
  struct Timer {
    double due = 0.0;
    Callback cb;
  };

  size_t SlotFor(double due) const;

  double tick_;
  size_t num_slots_;
  double anchor_;   // wall time of the cursor slot's start
  size_t cursor_ = 0;
  uint64_t next_id_ = 1;
  std::vector<std::vector<uint64_t>> slots_;
  std::unordered_map<uint64_t, Timer> timers_;
};

class EventLoop {
 public:
  using Task = std::function<void()>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll instance and the wakeup eventfd. Must succeed
  /// before Run().
  Status Init();

  /// The loop. Blocks until RequestStop() AND the drained check (if
  /// set) returns true AND no posted task is pending.
  void Run();

  /// Thread-safe: enqueues `fn` to run on the loop thread and wakes the
  /// loop. The only way other threads talk to the loop.
  void Post(Task fn);

  /// Thread-safe: asks Run() to exit once drained.
  void RequestStop();

  bool stop_requested() const {
    return stop_.load(std::memory_order_acquire);
  }

  /// `drained` is consulted (on the loop thread) before exiting after
  /// RequestStop(); return true when no connection state remains.
  void SetDrainedCheck(std::function<bool()> drained) {
    drained_ = std::move(drained);
  }

  /// Registers `fd` with the given epoll `events` mask (plus the
  /// implicit ERR/HUP). `extra_flags` is OR'd into the mask verbatim
  /// (EPOLLEXCLUSIVE for a shared listener). Loop thread only, except
  /// before Run() starts.
  Status Add(int fd, uint32_t events, FdHandler* handler,
             uint32_t extra_flags = 0);
  /// Changes the interest mask of a registered fd.
  Status Mod(int fd, uint32_t events);
  /// Unregisters; the fd is NOT closed. Safe to call for unknown fds.
  void Del(int fd);

  /// True when `fd` is currently registered.
  bool Watches(int fd) const { return handlers_.count(fd) != 0; }

  TimerWheel& timers() { return wheel_; }

  /// True on the thread currently inside Run() (always true before Run
  /// starts, so setup code can assert it).
  bool InLoopThread() const;

 private:
  void DrainWakeups();
  bool RunPostedTasks();  // returns true when any task ran

  int epoll_fd_ = -1;
  int wake_fd_ = -1;

  TimerWheel wheel_;

  // fd -> (generation, handler). The generation is carried in the epoll
  // user data so an event queued for a connection that was closed (and
  // whose fd number was reused) within the same batch is dropped
  // instead of delivered to the new owner.
  struct Watch {
    uint32_t gen = 0;
    FdHandler* handler = nullptr;
  };
  std::unordered_map<int, Watch> handlers_;
  uint32_t next_gen_ = 1;

  std::mutex post_mu_;
  std::vector<Task> posted_;

  std::atomic<bool> stop_{false};
  std::function<bool()> drained_;

  std::atomic<std::thread::id> loop_thread_;
  bool running_ = false;
};

}  // namespace service
}  // namespace qfix

#endif  // QFIX_SERVICE_EVENT_LOOP_H_
