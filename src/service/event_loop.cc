#include "service/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "common/timer.h"

namespace qfix {
namespace service {

// ---------------------------------------------------------------------------
// TimerWheel

TimerWheel::TimerWheel(double tick_seconds, size_t num_slots)
    : tick_(tick_seconds > 0.0 ? tick_seconds : 0.1),
      num_slots_(std::max<size_t>(num_slots, 2)),
      anchor_(MonotonicSeconds()),
      slots_(num_slots_) {}

size_t TimerWheel::SlotFor(double due) const {
  // Ceiling bucketing: the slot is processed no earlier than `due`, so
  // timers never fire early. At least one tick ahead — the cursor slot
  // itself has already begun.
  double ahead = (due - anchor_) / tick_;
  size_t ticks = ahead <= 1.0 ? 1 : static_cast<size_t>(std::ceil(ahead));
  // Beyond the horizon the entry parks in the furthest slot and is
  // re-bucketed when that slot comes around (it takes another lap).
  ticks = std::min(ticks, num_slots_ - 1);
  return (cursor_ + ticks) % num_slots_;
}

uint64_t TimerWheel::Schedule(double delay_seconds, Callback cb) {
  uint64_t id = next_id_++;
  Timer t;
  t.due = MonotonicSeconds() + std::max(delay_seconds, 0.0);
  t.cb = std::move(cb);
  slots_[SlotFor(t.due)].push_back(id);
  timers_.emplace(id, std::move(t));
  return id;
}

void TimerWheel::Cancel(uint64_t id) {
  // The slot keeps a stale id; Advance() skips ids with no live entry.
  timers_.erase(id);
}

double TimerWheel::Advance(double now) {
  while (anchor_ + tick_ <= now) {
    anchor_ += tick_;
    cursor_ = (cursor_ + 1) % num_slots_;
    std::vector<uint64_t> due_ids;
    due_ids.swap(slots_[cursor_]);
    for (uint64_t id : due_ids) {
      auto it = timers_.find(id);
      if (it == timers_.end()) continue;  // cancelled
      if (it->second.due <= now + 1e-9) {
        Callback cb = std::move(it->second.cb);
        timers_.erase(it);
        cb();  // may Schedule/Cancel reentrantly; containers are safe
      } else {
        // Parked beyond the horizon (or not yet due): another lap.
        slots_[SlotFor(it->second.due)].push_back(id);
      }
    }
  }
  if (timers_.empty()) return -1.0;
  double next = anchor_ + tick_ - now;
  return next > 0.0 ? next : 0.0;
}

// ---------------------------------------------------------------------------
// EventLoop

EventLoop::EventLoop() { loop_thread_.store(std::this_thread::get_id()); }

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status EventLoop::Init() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::Internal(
        StringPrintf("epoll_create1(): %s", strerror(errno)));
  }
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    return Status::Internal(StringPrintf("eventfd(): %s", strerror(errno)));
  }
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // sentinel: the wakeup channel
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::Internal(
        StringPrintf("epoll_ctl(wakeup): %s", strerror(errno)));
  }
  return Status::OK();
}

bool EventLoop::InLoopThread() const {
  return loop_thread_.load() == std::this_thread::get_id();
}

void EventLoop::Post(Task fn) {
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    posted_.push_back(std::move(fn));
  }
  uint64_t one = 1;
  // A full eventfd counter (EAGAIN) already guarantees a pending wakeup.
  ssize_t rc = ::write(wake_fd_, &one, sizeof(one));
  (void)rc;
}

void EventLoop::RequestStop() {
  stop_.store(true, std::memory_order_release);
  Post([] {});  // wake the loop so it re-evaluates the exit condition
}

Status EventLoop::Add(int fd, uint32_t events, FdHandler* handler,
                      uint32_t extra_flags) {
  QFIX_CHECK(InLoopThread()) << "EventLoop::Add off the loop thread";
  Watch watch;
  watch.gen = next_gen_++;
  if (watch.gen == 0) watch.gen = next_gen_++;
  watch.handler = handler;
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events | extra_flags;
  ev.data.u64 =
      (static_cast<uint64_t>(static_cast<uint32_t>(fd)) << 32) | watch.gen;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Internal(
        StringPrintf("epoll_ctl(ADD fd=%d): %s", fd, strerror(errno)));
  }
  handlers_[fd] = watch;
  return Status::OK();
}

Status EventLoop::Mod(int fd, uint32_t events) {
  QFIX_CHECK(InLoopThread()) << "EventLoop::Mod off the loop thread";
  auto it = handlers_.find(fd);
  if (it == handlers_.end()) {
    return Status::InvalidArgument("Mod() on an unregistered fd");
  }
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.u64 = (static_cast<uint64_t>(static_cast<uint32_t>(fd)) << 32) |
                it->second.gen;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Internal(
        StringPrintf("epoll_ctl(MOD fd=%d): %s", fd, strerror(errno)));
  }
  return Status::OK();
}

void EventLoop::Del(int fd) {
  QFIX_CHECK(InLoopThread()) << "EventLoop::Del off the loop thread";
  if (handlers_.erase(fd) == 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::DrainWakeups() {
  uint64_t count = 0;
  while (::read(wake_fd_, &count, sizeof(count)) > 0) {
  }
}

bool EventLoop::RunPostedTasks() {
  std::vector<Task> tasks;
  {
    std::lock_guard<std::mutex> lock(post_mu_);
    tasks.swap(posted_);
  }
  for (Task& t : tasks) t();
  return !tasks.empty();
}

void EventLoop::Run() {
  loop_thread_.store(std::this_thread::get_id());
  running_ = true;
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  for (;;) {
    RunPostedTasks();
    double next_timer = wheel_.Advance(MonotonicSeconds());

    if (stop_requested() && (!drained_ || drained_())) {
      std::lock_guard<std::mutex> lock(post_mu_);
      if (posted_.empty()) break;
      continue;  // a completion raced in; deliver it first
    }

    int timeout_ms = -1;
    if (next_timer >= 0.0) {
      timeout_ms = static_cast<int>(next_timer * 1e3) + 1;
      timeout_ms = std::min(timeout_ms, 1000);
    }
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EBADF and friends: the loop is torn down
    }
    for (int i = 0; i < n; ++i) {
      uint64_t data = events[i].data.u64;
      if (data == 0) {
        DrainWakeups();
        continue;
      }
      int fd = static_cast<int>(data >> 32);
      uint32_t gen = static_cast<uint32_t>(data & 0xffffffffu);
      auto it = handlers_.find(fd);
      // An earlier handler in this batch may have closed this fd (and
      // the number may even have been reused): the generation check
      // drops the stale delivery.
      if (it == handlers_.end() || it->second.gen != gen) continue;
      it->second.handler->OnEvents(events[i].events);
    }
  }
  running_ = false;
}

}  // namespace service
}  // namespace qfix
