// DatasetRegistry: named, immutable diagnosis snapshots shared between
// registration and in-flight requests.
//
// A dataset is the paper's system-model triple — trusted checkpoint D0,
// the executed query log Q, and the replayed dirty state D_n — parsed
// once at registration (io CSV/snapshot readers + the SQL parser) and
// frozen behind shared_ptr<const Dataset> (cache::Dataset, so the whole
// stack down to QFixEngine shares the same zero-copy snapshot type).
// Registration replacing a name while diagnoses run against the old
// version is safe by construction: readers hold their own reference, so
// the old snapshot stays alive until the last request drops it, and
// nobody mutates a published Dataset.
//
// Every registration mints a fresh, process-unique version id
// (cache::NextSnapshotVersion). (name, version) is the identity the
// report cache keys on; when a name is replaced the registry also
// eagerly erases that name's entries from the attached ReportCache so
// the byte budget is not held by unreachable reports.
#ifndef QFIX_SERVICE_REGISTRY_H_
#define QFIX_SERVICE_REGISTRY_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/report_cache.h"
#include "cache/snapshot.h"
#include "common/result.h"
#include "relational/database.h"
#include "relational/query.h"

namespace qfix {
namespace service {

/// One registered diagnosis snapshot. Immutable after construction.
using Dataset = cache::Dataset;

class DatasetRegistry {
 public:
  /// `max_datasets` bounds how many distinct names may be registered
  /// (0 = unbounded). Datasets are pinned in memory for the process
  /// lifetime, so a served registry must cap them or a client looping
  /// over fresh names exhausts memory; replacement of an existing name
  /// is always allowed.
  explicit DatasetRegistry(size_t max_datasets = 0)
      : max_datasets_(max_datasets) {}

  /// Attaches the report cache to invalidate when a name is replaced or
  /// erased. Non-owning; call before serving (not thread-safe against
  /// concurrent Register).
  void AttachReportCache(cache::ReportCache* report_cache) {
    report_cache_ = report_cache;
  }

  /// Parses and publishes a dataset. `d0_text` is either a CSV document
  /// (header of attribute names) or a `qfix-snapshot v1` checkpoint,
  /// auto-detected; `log_sql` is the ';'-separated executed query log.
  /// Replaces any existing dataset of the same name (in-flight requests
  /// keep their reference to the old version). Thread-safe.
  Result<std::shared_ptr<const Dataset>> Register(std::string name,
                                                  std::string_view d0_text,
                                                  std::string table_name,
                                                  std::string_view log_sql);

  /// Removes `name` (dropping its report-cache entries too). Returns
  /// whether it was registered. In-flight readers keep their reference.
  bool Erase(std::string_view name);

  /// The current snapshot for `name`, or nullptr. Thread-safe.
  std::shared_ptr<const Dataset> Get(std::string_view name) const;

  size_t size() const;

 private:
  size_t max_datasets_;
  cache::ReportCache* report_cache_ = nullptr;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const Dataset>> map_;
};

}  // namespace service
}  // namespace qfix

#endif  // QFIX_SERVICE_REGISTRY_H_
