// DatasetRegistry: named, immutable diagnosis snapshots shared between
// registration and in-flight requests.
//
// A dataset is the paper's system-model triple — trusted checkpoint D0,
// the executed query log Q, and the replayed dirty state D_n — parsed
// once at registration (io CSV/snapshot readers + the SQL parser) and
// frozen behind shared_ptr<const Dataset>. Registration replacing a
// name while diagnoses run against the old version is safe by
// construction: readers hold their own reference, so the old snapshot
// stays alive until the last request drops it, and nobody mutates a
// published Dataset.
#ifndef QFIX_SERVICE_REGISTRY_H_
#define QFIX_SERVICE_REGISTRY_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "relational/database.h"
#include "relational/query.h"

namespace qfix {
namespace service {

/// One registered diagnosis snapshot. Immutable after construction.
struct Dataset {
  std::string name;
  relational::Database d0;
  relational::QueryLog log;
  /// The observed final state, replay of `log` on `d0` — what complaints
  /// are filed against.
  relational::Database dirty;
};

class DatasetRegistry {
 public:
  /// `max_datasets` bounds how many distinct names may be registered
  /// (0 = unbounded). Datasets are pinned in memory for the process
  /// lifetime, so a served registry must cap them or a client looping
  /// over fresh names exhausts memory; replacement of an existing name
  /// is always allowed.
  explicit DatasetRegistry(size_t max_datasets = 0)
      : max_datasets_(max_datasets) {}

  /// Parses and publishes a dataset. `d0_text` is either a CSV document
  /// (header of attribute names) or a `qfix-snapshot v1` checkpoint,
  /// auto-detected; `log_sql` is the ';'-separated executed query log.
  /// Replaces any existing dataset of the same name (in-flight requests
  /// keep their reference to the old version). Thread-safe.
  Result<std::shared_ptr<const Dataset>> Register(std::string name,
                                                  std::string_view d0_text,
                                                  std::string table_name,
                                                  std::string_view log_sql);

  /// The current snapshot for `name`, or nullptr. Thread-safe.
  std::shared_ptr<const Dataset> Get(std::string_view name) const;

  size_t size() const;

 private:
  size_t max_datasets_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const Dataset>> map_;
};

}  // namespace service
}  // namespace qfix

#endif  // QFIX_SERVICE_REGISTRY_H_
