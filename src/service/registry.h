// DatasetRegistry: named, immutable diagnosis snapshots shared between
// registration and in-flight requests.
//
// A dataset is the paper's system-model triple — trusted checkpoint D0,
// the executed query log Q, and the replayed dirty state D_n — parsed
// once at registration (io CSV/snapshot readers + the SQL parser) and
// frozen behind shared_ptr<const Dataset> (cache::Dataset, so the whole
// stack down to QFixEngine shares the same zero-copy snapshot type).
// Registration replacing a name while diagnoses run against the old
// version is safe by construction: readers hold their own reference, so
// the old snapshot stays alive until the last request drops it, and
// nobody mutates a published Dataset.
//
// Every registration mints a fresh, process-unique version id
// (cache::NextSnapshotVersion). (name, version) is the identity the
// report cache keys on; when a name is replaced the registry also
// eagerly erases that name's entries from the attached ReportCache so
// the byte budget is not held by unreachable reports.
//
// Eviction (the multi-tenant fleet story): with a byte budget set,
// thousands of tenants fit a fixed memory envelope. Registration and
// lookup refresh recency; past the budget the least recently used
// datasets are evicted, and entries idle beyond the TTL are swept.
// A dataset whose snapshot is still referenced outside the registry
// (an in-flight diagnosis, a caller-held handle) is PINNED: it is
// skipped by both LRU and TTL eviction, so a name never vanishes out
// from under a running solve — and even an evicted snapshot's memory
// survives until its last reader drops it (shared_ptr). Eviction drops
// the name's report-cache partition too; re-registering an evicted
// name is an ordinary registration with a fresh version.
#ifndef QFIX_SERVICE_REGISTRY_H_
#define QFIX_SERVICE_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cache/report_cache.h"
#include "cache/snapshot.h"
#include "common/result.h"
#include "ingest/encoding_cache.h"
#include "relational/database.h"
#include "relational/query.h"

namespace qfix {
namespace service {

/// One registered diagnosis snapshot. Immutable after construction.
using Dataset = cache::Dataset;

/// Rough resident-size estimate of one dataset: tuple storage for D0
/// and the replayed dirty state, plus per-query log overhead. A sizing
/// knob for the byte budget, not an allocator contract.
size_t ApproxDatasetBytes(const Dataset& dataset);

struct RegistryOptions {
  /// Distinct names the registry may hold (0 = unbounded). A full
  /// registry rejects NEW names with ResourceExhausted (replacement is
  /// always allowed) — the count cap is back-pressure, never eviction.
  size_t max_datasets = 0;
  /// Byte budget over ApproxDatasetBytes of all registered datasets
  /// (0 = unbounded). Past it, registration evicts the least recently
  /// used unpinned datasets.
  size_t max_bytes = 0;
  /// Idle lifetime: datasets untouched (no Get/Register) this long are
  /// swept on the next registration or SweepExpired() (0 = no TTL).
  double ttl_seconds = 0.0;
};

class DatasetRegistry {
 public:
  explicit DatasetRegistry(RegistryOptions options);
  /// Back-compat: count cap only, no byte budget, no TTL.
  explicit DatasetRegistry(size_t max_datasets = 0)
      : DatasetRegistry(RegistryOptions{max_datasets, 0, 0.0}) {}

  /// Attaches the report cache to invalidate when a name is replaced,
  /// erased, or evicted. Non-owning; call before serving (not
  /// thread-safe against concurrent Register).
  void AttachReportCache(cache::ReportCache* report_cache) {
    report_cache_ = report_cache;
  }

  /// Attaches the encoding cache to warm on append and invalidate when
  /// a name is replaced, erased, or evicted. Non-owning; call before
  /// serving (not thread-safe against concurrent Register).
  void AttachEncodingCache(ingest::EncodingCache* encoding_cache) {
    encoding_cache_ = encoding_cache;
  }

  /// Parses and publishes a dataset. `d0_text` is either a CSV document
  /// (header of attribute names) or a `qfix-snapshot v1` checkpoint,
  /// auto-detected; `log_sql` is the ';'-separated executed query log.
  /// Replaces any existing dataset of the same name (in-flight requests
  /// keep their reference to the old version). May evict other entries
  /// (TTL, then LRU byte pressure). Thread-safe.
  Result<std::shared_ptr<const Dataset>> Register(std::string name,
                                                  std::string_view d0_text,
                                                  std::string table_name,
                                                  std::string_view log_sql);

  /// Parses `log_sql` against `name`'s schema and publishes a *derived*
  /// version whose log is extended by those queries: the current tail
  /// is sealed into a chunk and the new version shares D0 and every
  /// prior chunk with its base (cache::AppendSnapshot — no deep copy).
  /// `max_queries` caps the queries one append may carry (0 =
  /// unbounded; past it ResourceExhausted). Atomic: any failure —
  /// unknown name (NotFound), unparsable or empty SQL
  /// (InvalidArgument), a concurrent re-registration winning the race
  /// (Aborted) — leaves the registered version untouched. Appends do
  /// NOT invalidate the name's report-cache partition; prefix-aware
  /// keys (cache::WindowSignature) keep pre-append windows servable.
  /// Thread-safe; appends are serialized with each other.
  Result<std::shared_ptr<const Dataset>> Append(std::string_view name,
                                                std::string_view log_sql,
                                                size_t max_queries = 0);

  /// Removes `name` (dropping its report-cache entries too). Returns
  /// whether it was registered. In-flight readers keep their reference.
  bool Erase(std::string_view name);

  /// The current snapshot for `name`, or nullptr. Refreshes recency.
  /// Thread-safe.
  std::shared_ptr<const Dataset> Get(std::string_view name) const;

  /// Evicts every unpinned dataset idle beyond the TTL; returns how
  /// many were evicted. No-op without a TTL. Thread-safe.
  size_t SweepExpired();

  size_t size() const;

  struct Stats {
    size_t datasets = 0;
    /// Sum of ApproxDatasetBytes over registered datasets.
    size_t bytes = 0;
    size_t capacity_bytes = 0;
    /// LRU evictions under byte pressure (lifetime).
    uint64_t evictions = 0;
    /// TTL sweeps (lifetime).
    uint64_t ttl_evictions = 0;
    /// Successful Append() publications (lifetime).
    uint64_t appends = 0;
    /// Sealed chunks across the currently registered head versions.
    size_t chunks = 0;
  };
  Stats stats() const;

  /// Test hook: replaces the recency/TTL clock (monotonic seconds).
  void SetClockForTest(std::function<double()> clock);

 private:
  struct Entry {
    std::shared_ptr<const Dataset> dataset;
    size_t bytes = 0;
    double last_used = 0.0;
    /// Position in lru_ (front = most recently used).
    std::list<std::string>::iterator lru_it;
    /// Superseded versions of this name still observable by in-flight
    /// solves (appends push the old head here). A lockable entry means
    /// some caller still reads a chunk-sharing ancestor, so the name is
    /// pinned exactly like a referenced head. Expired pointers are
    /// pruned opportunistically.
    std::vector<std::weak_ptr<const Dataset>> lineage;
  };

  double NowLocked() const;
  void TouchLocked(Entry& entry) const;
  /// Whether the snapshot — or any superseded version of it that an
  /// in-flight solve still holds — is referenced outside the registry
  /// map (the caller of the eviction scan holds no extra reference).
  /// Under mu_ nobody can acquire a new reference except through Get,
  /// which also takes mu_ — so use_count is stable for the decision.
  static bool PinnedLocked(Entry& entry);
  /// TTL sweep + LRU byte-pressure eviction, sparing `keep` (the name
  /// just registered) and every pinned entry. Appends evicted names to
  /// `evicted` for report-cache invalidation outside the lock.
  void EvictLocked(std::string_view keep, std::vector<std::string>* evicted);

  RegistryOptions options_;
  cache::ReportCache* report_cache_ = nullptr;
  ingest::EncodingCache* encoding_cache_ = nullptr;
  /// Serializes Append() calls with each other (never held together
  /// with mu_ across a parse): publish becomes a simple
  /// compare-against-base, and a concurrent Register still wins.
  std::mutex append_mu_;
  mutable std::mutex mu_;
  std::function<double()> clock_;
  /// mutable: Get() is logically const but refreshes recency.
  mutable std::unordered_map<std::string, Entry> map_;
  /// Recency order over registered names; front = most recently used.
  mutable std::list<std::string> lru_;
  size_t bytes_ = 0;
  uint64_t evictions_ = 0;
  uint64_t ttl_evictions_ = 0;
  uint64_t appends_ = 0;
};

}  // namespace service
}  // namespace qfix

#endif  // QFIX_SERVICE_REGISTRY_H_
