// Minimal HTTP/1.1 message layer for the embedded diagnosis server.
//
// Dependency-free by design (the container bakes in no HTTP library,
// and the service only needs the request/response subset the paper's
// Example-1 workflow exercises): explicit Content-Length bodies,
// HTTP/1.1 keep-alive honored per the Connection header (bytes beyond
// one message carry over to the next via TakeLeftover()). Chunked
// transfer and TLS are deliberately out of scope — the ROADMAP lists
// them as proxy-layer follow-ons.
//
// The parser is incremental: the server feeds it whatever recv() hands
// back and asks "complete yet?", so slow clients and pipelined bytes in
// one segment both work. Limits are enforced while bytes arrive, never
// after, so an oversized header or body stops accumulating immediately
// (the server answers 431/413 instead of buffering garbage).
#ifndef QFIX_SERVICE_HTTP_H_
#define QFIX_SERVICE_HTTP_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace qfix {
namespace service {

/// One parsed HTTP request.
struct HttpRequest {
  std::string method;   // uppercase, e.g. "POST"
  std::string target;   // as sent, e.g. "/v1/diagnose?verbose=1"
  std::string version;  // "HTTP/1.1" or "HTTP/1.0"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Header value by case-insensitive name, or nullptr.
  const std::string* FindHeader(std::string_view name) const;
  /// `target` up to (not including) the first '?'.
  std::string_view path() const;
  /// Everything after the first '?', or empty.
  std::string_view query() const;
  /// Connection persistence per RFC 9112 §9.3: HTTP/1.1 defaults to
  /// keep-alive unless the Connection header carries a `close` token;
  /// HTTP/1.0 defaults to close unless it carries `keep-alive`.
  bool WantsKeepAlive() const;
};

/// Byte budgets for one request.
struct HttpLimits {
  /// Request line + headers.
  size_t max_head_bytes = 64 * 1024;
  /// Declared Content-Length.
  size_t max_body_bytes = 8 * 1024 * 1024;
};

/// Incremental request parser. Feed() bytes as they arrive; once it
/// returns kComplete, request() holds the message. On kError,
/// error_status() names the HTTP status the server should answer with
/// (400/413/431/501) and error() the diagnostic.
class HttpRequestParser {
 public:
  explicit HttpRequestParser(HttpLimits limits = HttpLimits())
      : limits_(limits) {}

  enum class State { kNeedMore, kComplete, kError };

  /// Consumes `bytes`; cheap to call with partial input. Calling after
  /// kComplete/kError returns the settled state unchanged.
  State Feed(std::string_view bytes);

  State state() const { return state_; }
  const HttpRequest& request() const { return request_; }
  /// Suggested HTTP response status for a kError outcome.
  int error_status() const { return error_status_; }
  const std::string& error() const { return error_; }

  /// After kComplete: bytes received beyond this message — the start of
  /// a pipelined next request on a kept-alive connection. Feed them to
  /// the next parser. Moves the bytes out (empty on repeat calls).
  std::string TakeLeftover() { return std::move(leftover_); }

  /// Rewinds to a fresh kNeedMore state (limits kept) so one parser can
  /// serve every request of a kept-alive connection without churn.
  void Reset();

 private:
  State Fail(int http_status, std::string message);
  State ParseHead();

  HttpLimits limits_;
  State state_ = State::kNeedMore;
  std::string buffer_;
  std::string leftover_;
  bool head_done_ = false;
  size_t body_expected_ = 0;
  HttpRequest request_;
  int error_status_ = 400;
  std::string error_;
};

/// One response to serialize. `Serialize()` fills in Content-Length,
/// the Connection header (close unless `keep_alive`), and a
/// Content-Type of application/json unless the headers already carry
/// one.
struct HttpResponse {
  int status = 200;
  /// Announce (and honor) connection persistence. The server sets this
  /// per request from HttpRequest::WantsKeepAlive() and its own limits.
  bool keep_alive = false;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  std::string Serialize() const;
};

/// Standard reason phrase for the status codes the service emits;
/// "Unknown" otherwise.
const char* ReasonPhrase(int status);

/// Parses a complete HTTP response (head + body as read until EOF under
/// Connection: close). Used by the loopback client.
Result<HttpResponse> ParseHttpResponse(std::string_view raw);

}  // namespace service
}  // namespace qfix

#endif  // QFIX_SERVICE_HTTP_H_
