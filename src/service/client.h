// Minimal blocking HTTP/1.1 client for driving a DiagnosisServer:
// `qfix_cli --client` smoke runs, the end-to-end tests, and the
// loopback throughput bench. One request per connection, mirroring the
// server's Connection: close semantics.
#ifndef QFIX_SERVICE_CLIENT_H_
#define QFIX_SERVICE_CLIENT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "service/http.h"

namespace qfix {
namespace service {

/// POSTs `body` (application/json) to http://host:port/path and returns
/// the parsed response. Fails with InvalidArgument/Internal on socket
/// or protocol errors; HTTP error statuses are returned, not errors.
Result<HttpResponse> HttpPost(const std::string& host, int port,
                              const std::string& path,
                              const std::string& body,
                              double timeout_seconds = 30.0);

/// GETs http://host:port/path.
Result<HttpResponse> HttpGet(const std::string& host, int port,
                             const std::string& path,
                             double timeout_seconds = 30.0);

/// Splits "http://HOST:PORT" (scheme optional) into host and port.
struct HostPort {
  std::string host;
  int port = 0;
};
Result<HostPort> ParseUrl(std::string_view url);

}  // namespace service
}  // namespace qfix

#endif  // QFIX_SERVICE_CLIENT_H_
