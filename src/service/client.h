// Minimal blocking HTTP/1.1 client for driving a DiagnosisServer:
// `qfix_cli --client` smoke runs, the end-to-end tests, and the
// loopback throughput bench. The free functions open one connection
// per request (Connection: close); ClientConnection keeps its socket
// across requests (HTTP/1.1 keep-alive), which is what repeat callers
// should use — it saves a TCP handshake per request.
#ifndef QFIX_SERVICE_CLIENT_H_
#define QFIX_SERVICE_CLIENT_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "service/http.h"

namespace qfix {
namespace service {

/// POSTs `body` (application/json) to http://host:port/path and returns
/// the parsed response. Fails with InvalidArgument/Internal on socket
/// or protocol errors; HTTP error statuses are returned, not errors.
/// `extra_headers` are sent verbatim after the standard headers (the
/// tests use this to exercise X-Request-Id echoing).
Result<HttpResponse> HttpPost(
    const std::string& host, int port, const std::string& path,
    const std::string& body, double timeout_seconds = 30.0,
    const std::vector<std::pair<std::string, std::string>>& extra_headers =
        {});

/// GETs http://host:port/path.
Result<HttpResponse> HttpGet(const std::string& host, int port,
                             const std::string& path,
                             double timeout_seconds = 30.0);

/// A persistent connection to one server. Requests reuse the socket
/// until the server answers `Connection: close` (e.g. its
/// max_requests_per_conn budget ran out) or the socket dies, at which
/// point the next request transparently reconnects. Not thread-safe;
/// one ClientConnection per driving thread.
class ClientConnection {
 public:
  ClientConnection(std::string host, int port);
  ~ClientConnection();

  ClientConnection(const ClientConnection&) = delete;
  ClientConnection& operator=(const ClientConnection&) = delete;

  /// `extra_headers` are sent verbatim after the standard headers —
  /// the load generator stamps a per-request X-Request-Id this way so
  /// client-side latency outliers correlate with server-side retained
  /// traces.
  Result<HttpResponse> Post(
      const std::string& path, const std::string& body,
      double timeout_seconds = 30.0,
      const std::vector<std::pair<std::string, std::string>>& extra_headers =
          {});
  Result<HttpResponse> Get(const std::string& path,
                           double timeout_seconds = 30.0);

  /// How many TCP connects this client has performed — 1 after any
  /// number of kept-alive requests; more only when the server closed.
  int connects() const { return connects_; }

 private:
  Result<HttpResponse> Roundtrip(
      const char* method, const std::string& path, const std::string& body,
      double timeout_seconds,
      const std::vector<std::pair<std::string, std::string>>& extra_headers);
  Status EnsureConnected(double timeout_seconds);
  void CloseSocket();

  std::string host_;
  int port_;
  int fd_ = -1;
  int connects_ = 0;
};

/// Splits "http://HOST:PORT" (scheme optional) into host and port.
struct HostPort {
  std::string host;
  int port = 0;
};
Result<HostPort> ParseUrl(std::string_view url);

/// Result of ConcurrentSmoke: how far each of the N connections got.
struct SmokeStats {
  int requested = 0;  // connections asked for
  int connected = 0;  // TCP connects that completed
  int ok = 0;         // connections whose GET /v1/healthz answered 200
};

/// Opens `connections` concurrent nonblocking sockets to the server,
/// holds them all open at once, then sends GET /v1/healthz on each and
/// reads the responses — the CI serve-smoke uses this to prove the
/// event-loop server really multiplexes hundreds of simultaneous
/// connections on O(1) threads. Fails only on setup errors; per-
/// connection failures just lower the counters.
Result<SmokeStats> ConcurrentSmoke(const std::string& host, int port,
                                   int connections,
                                   double timeout_seconds = 30.0);

}  // namespace service
}  // namespace qfix

#endif  // QFIX_SERVICE_CLIENT_H_
