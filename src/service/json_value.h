// Minimal JSON document parser for the service's request bodies.
//
// The library core stays writer-only (common/json.h renders reports);
// consuming JSON is a service concern, so the parser lives here. It
// accepts RFC 8259 documents — objects, arrays, strings with escapes
// (including \uXXXX and surrogate pairs), numbers, booleans, null —
// with a recursion-depth cap, and rejects trailing garbage. All numbers
// are doubles, matching the data model (§3.1: every attribute is
// numeric).
#ifndef QFIX_SERVICE_JSON_VALUE_H_
#define QFIX_SERVICE_JSON_VALUE_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace qfix {
namespace service {

/// One parsed JSON value. A tagged struct rather than a std::variant so
/// lookups read naturally at call sites (v.Find("k"), v.AsString()).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; calling the wrong one trips a QFIX_CHECK (request
  /// handlers must test the kind first).
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::vector<std::pair<std::string, JsonValue>>& AsObject() const;

  /// Object member by key, or nullptr (also nullptr on non-objects, so
  /// handlers can chain lookups without kind checks at every step).
  const JsonValue* Find(std::string_view key) const;

  /// Convenience lookups with defaults for optional request fields.
  /// Returns the fallback when the key is absent; a present key of the
  /// wrong kind is InvalidArgument — silently dropping a mistyped
  /// parameter would diagnose with defaults and report success.
  Result<double> NumberOr(std::string_view key, double fallback) const;
  Result<bool> BoolOr(std::string_view key, bool fallback) const;
  /// Required string member; InvalidArgument when missing or not a
  /// string.
  Result<std::string> RequiredString(std::string_view key) const;

  static JsonValue MakeNull();
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document. The whole input must be consumed (trailing
/// non-whitespace is an error). `max_depth` bounds nesting so a
/// "[[[[..." request cannot blow the stack; `max_nodes` bounds the
/// total value count so a body of tiny scalars ("[1,1,1,...]") cannot
/// amplify ~50x into JsonValue memory. The default is far above any
/// legitimate service request (64 items with modest parameter sets use
/// a few hundred nodes) while capping transient parse memory at a few
/// megabytes.
Result<JsonValue> ParseJson(std::string_view text, size_t max_depth = 64,
                            size_t max_nodes = 65536);

}  // namespace service
}  // namespace qfix

#endif  // QFIX_SERVICE_JSON_VALUE_H_
