// DiagnosisServer: the embedded HTTP/JSON front-end over the QFix
// pipeline — the network entry point the ROADMAP's multi-tenant story
// builds on (paper Example 1: a complaint arrives as a request, the
// diagnosis report goes back attached to the ticket).
//
// Architecture (dependency-free sockets, readiness-driven):
//   * One or more EventLoop threads (--event-loop-threads) share a
//     nonblocking listener via EPOLLEXCLUSIVE and own every connection
//     as a nonblocking state machine (service/connection.h). An idle
//     keep-alive connection costs a small struct and a timer-wheel
//     entry — not a thread stack — so `max_connections` defaults to
//     10k and the thread count stays O(event-loop-threads).
//   * Cheap endpoints (healthz, stats, 404/405) answer inline on the
//     loop thread. Blocking handlers (dataset registration, diagnose,
//     the debug endpoints) are offloaded to a small handler pool; the
//     completion re-arms the connection by posting back onto its loop
//     through the eventfd wakeup (the solve-dispatch handshake).
//   * Diagnosis requests resolve against immutable zero-copy dataset
//     snapshots (cache::Snapshot): no request ever deep-copies a
//     registered dataset. Before dispatching to the pool the server
//     consults a cache::ReportCache keyed by (dataset, version,
//     canonical complaint hash): hits return the byte-identical cached
//     report (skipping both the solver and the admission gate), misses
//     take singleflight leadership so concurrent identical requests
//     coalesce into one solve, and re-registration invalidates.
//   * Solver work is dispatched onto ONE shared src/exec work-stealing
//     pool, reused across every request via the caller-owned-pool hooks
//     in BatchOptions/MilpOptions (no thread churn per request). An
//     admission gate bounds in-flight diagnosis work — counted in
//     batch items, since one request can fan out items[] — and sheds
//     with 429 over capacity instead of queueing without bound.
//     Health/stats/registration bypass the gate so the server stays
//     observable under load.
//   * Multi-tenant hardening: the gate is a TenantGovernor (weighted
//     fair sharing per dataset namespace — an overloaded tenant sheds
//     against its own share and cannot starve a light one), the
//     registry takes a byte budget + TTL (LRU eviction keeps thousands
//     of tenants inside a fixed envelope; pinned in-flight snapshots
//     are never evicted), the report cache can partition its budget
//     per tenant, and /v1/stats breaks requests/sheds/latency
//     percentiles down per tenant so one tenant's p99 never skews
//     another's.
//   * Stop() is cooperative: the cancellation token fires (queued batch
//     items fail fast with ResourceExhausted), the listeners
//     unregister, open connections close (ones waiting on a dispatched
//     handler get their response first), and the loops drain before
//     Stop() returns.
//
// Endpoints (all JSON; see README "Running the server" for schemas):
//   POST /v1/datasets   register a named snapshot + query log
//   POST /v1/datasets/{name}/append
//                       extend a registered log in place: seals the
//                       current tail into a chunk and publishes a
//                       derived version sharing D0 and every prior
//                       chunk (src/ingest) — report-cache entries
//                       whose complaint window predates the append
//                       keep serving
//   POST /v1/diagnose   run one-or-many complaint sets -> report_json
//   GET  /v1/healthz    liveness + dataset count
//   GET  /v1/stats      request counters, latency percentiles, queue,
//                       report-cache hit/miss/eviction/bytes, ingest
//                       append/chunk/prefix-reuse counters, uptime,
//                       flight-recorder occupancy, stall counts
//   GET  /v1/debug/traces
//                       the flight recorder: tail-sampled retained
//                       traces of completed requests (slow/errored/
//                       shed always kept), filterable by tenant,
//                       dataset, min duration, and outcome; bypasses
//                       the admission gate like healthz/stats so it
//                       answers even when the server is saturated
#ifndef QFIX_SERVICE_SERVER_H_
#define QFIX_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/report_cache.h"
#include "common/result.h"
#include "exec/cancellation.h"
#include "exec/thread_pool.h"
#include "harness/metrics.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/watchdog.h"
#include "service/connection.h"
#include "service/http.h"
#include "service/registry.h"
#include "service/tenant.h"

namespace qfix {
namespace service {

struct ServerOptions {
  /// Bind address. Loopback by default: exposing the service beyond the
  /// host is a proxy's job (ROADMAP follow-on).
  std::string host = "127.0.0.1";
  /// TCP port; 0 asks the kernel for an ephemeral port (read it back
  /// via port() — this is what tests and the CI smoke use).
  int port = 0;
  /// Workers of the shared diagnosis pool. <= 0 builds a deterministic
  /// inline pool (diagnosis runs on the handler-pool worker; request
  /// concurrency then comes from the handler pool alone).
  int jobs = 1;
  /// Event-loop threads sharing the listener (EPOLLEXCLUSIVE). One
  /// suffices for protocol work — handlers never run on it — but
  /// multiple loops shard readiness dispatch under very high
  /// connection counts.
  int event_loop_threads = 1;
  /// Admission capacity in batch items (one request fans out one slot
  /// per items[] entry, so the gate bounds solver work, not sockets).
  /// Beyond it, POST /v1/diagnose sheds with 429. Cache hits bypass the
  /// gate — they do no solver work.
  int max_inflight = 8;
  /// Concurrent connections being served; overflow is answered 503
  /// without reading the request. An open connection costs a few
  /// hundred bytes of state on its event loop, not a thread, so the
  /// default is four orders of magnitude above the old
  /// thread-per-connection cap.
  int max_connections = 10000;
  /// Distinct dataset names the registry will hold (back-pressure: a
  /// full registry 429s NEW names; replacement is always allowed).
  int max_datasets = 64;
  /// Registry byte budget over ApproxDatasetBytes (0 = unbounded).
  /// Past it, registration evicts the least recently used unpinned
  /// datasets — the fleet knob that fits thousands of tenants into a
  /// fixed memory envelope.
  size_t registry_bytes = 0;
  /// Registry idle TTL in seconds (0 = none): datasets untouched this
  /// long are swept on the next registration.
  double registry_ttl_seconds = 0.0;
  /// Cap on items[] per POST /v1/diagnose. Items share the dataset
  /// snapshot zero-copy, but each still buys an admission slot and a
  /// solve, so the array length stays bounded.
  int max_items = 64;
  /// Cap on queries one POST /v1/datasets/{name}/append may carry
  /// (0 = unbounded). Past it the append is rejected whole with 413 —
  /// never half-applied.
  size_t max_append_queries = 4096;
  /// Byte budget of the incremental-encoding cache (memoized
  /// chunk-prefix replay states, see ingest/encoding_cache.h);
  /// 0 disables prefix reuse (every diagnosis re-walks the full log).
  size_t encoding_cache_bytes = 16 * 1024 * 1024;
  /// Cap applied to a request's per-item time limit (seconds); also the
  /// default when the request names none.
  double max_time_limit_seconds = 30.0;
  /// Per-request read/write budgets and HTTP byte limits. The write
  /// budget bounds how long a peer that stops reading its response can
  /// hold a connection slot (the write deadline lives on the timer
  /// wheel; no thread is ever blocked on it).
  double read_timeout_seconds = 10.0;
  double write_timeout_seconds = 10.0;
  /// Keep-alive: how long an idle connection may sit between requests
  /// before the server closes it, and how many requests one connection
  /// may carry (<= 1 disables keep-alive entirely).
  double idle_timeout_seconds = 5.0;
  int max_requests_per_conn = 100;
  /// Report-cache byte budget; 0 disables caching (every diagnosis
  /// solves cold).
  size_t cache_bytes = 64 * 1024 * 1024;
  /// Caps one tenant's slice of each report-cache shard's budget, in
  /// (0, 1]; 1.0 = no partitioning. A cache-hungry tenant then churns
  /// its own LRU tail instead of flushing everyone else's working set.
  double cache_tenant_fraction = 1.0;
  /// Fair-share weights per tenant (dataset namespace); unlisted
  /// tenants weigh 1. Applied at construction; weights shape the
  /// guaranteed admission shares, not hard caps (idle capacity is
  /// borrowable).
  std::vector<std::pair<std::string, int>> tenant_weights;
  /// How long a shed tenant keeps its guaranteed admission reservation
  /// while it retries (see TenantGovernor::Options).
  double tenant_activity_window_seconds = 5.0;
  HttpLimits http;
  /// Registers POST /v1/debug/sleep {"seconds":s} — occupies one
  /// admission slot while sleeping — and POST /v1/debug/payload
  /// {"bytes":n} — answers with an n-byte body (write-deadline tests).
  /// Tests and the service bench use them to make over-capacity bursts
  /// and slow-reader reaping deterministic; never enable in production.
  bool enable_test_endpoints = false;
  /// Diagnose requests slower than this (wall ms) emit one WARN
  /// `slow_request` log line with the request id and per-phase
  /// breakdown, and their traces are always retained by the flight
  /// recorder. 0 disables the slow-request log (and slowness
  /// classification in the recorder).
  double slow_request_ms = 0.0;
  /// Flight recorder (GET /v1/debug/traces): byte budget of the ring
  /// of retained completed-request traces. 0 disables the recorder
  /// (the endpoint then answers with an empty list).
  size_t trace_buffer_bytes = 4 * 1024 * 1024;
  /// Probability an ok-and-fast request's trace is retained. Slow,
  /// errored, and shed requests are retained with probability 1.0
  /// regardless (tail-based sampling: the decision happens at request
  /// completion, when the outcome is known).
  double trace_sample_probability = 0.01;
  /// Watchdog: WARN `stall` when an event loop's heartbeat goes stale
  /// this long (a handler ran inline too long, a syscall hung).
  /// 0 disables the probe.
  double loop_stall_warn_seconds = 1.0;
  /// Watchdog: WARN `stall` while a dispatched solve has been running
  /// longer than this (wall ms) — flagged once, while still running,
  /// and the offending trace is force-retained. 0 disables.
  double solve_deadline_warn_ms = 0.0;
  /// Watchdog: WARN `stall` when the admission gate has been pinned at
  /// capacity continuously for this long. 0 disables.
  double admission_starvation_warn_seconds = 0.0;
  /// Token-bucket cap on WARN log lines per second (process-wide, see
  /// SetWarnLogPerSec in common/logging.h); dropped lines count into
  /// qfix_log_lines_dropped_total. 0 = unlimited.
  double warn_log_per_sec = 0.0;
};

class DiagnosisServer : private ConnectionHost {
 public:
  explicit DiagnosisServer(ServerOptions options = ServerOptions());
  /// Stops the server if still running.
  ~DiagnosisServer() override;

  DiagnosisServer(const DiagnosisServer&) = delete;
  DiagnosisServer& operator=(const DiagnosisServer&) = delete;

  /// Binds, listens, and spawns the event-loop threads. InvalidArgument
  /// on address/bind failures.
  Status Start();

  /// Cooperative shutdown: cancels in-flight batch work, unregisters
  /// the listeners, closes every connection (dispatched handlers finish
  /// and flush first), joins the loops. Idempotent.
  void Stop();

  /// The bound port (resolves port 0 after Start()).
  int port() const { return bound_port_; }

  /// The dataset registry, e.g. for preloading a dataset from files
  /// before Start() (tools/qfix_serve --d0/--log).
  DatasetRegistry& registry() { return registry_; }

  /// Point-in-time serving statistics (what GET /v1/stats renders).
  struct Stats {
    uint64_t requests_total = 0;
    uint64_t requests_datasets = 0;
    uint64_t requests_append = 0;
    uint64_t requests_diagnose = 0;
    uint64_t requests_health = 0;
    uint64_t requests_stats = 0;
    uint64_t requests_metrics = 0;
    uint64_t requests_debug = 0;
    uint64_t shed_429 = 0;
    uint64_t errors_4xx = 0;
    uint64_t errors_5xx = 0;
    /// TCP connections accepted (one may carry many requests under
    /// keep-alive).
    uint64_t connections_total = 0;
    /// Batch items solved (admitted through the gate); cache hits are
    /// not items — they never reach the pool.
    uint64_t items_total = 0;
    /// Diagnose sub-requests answered straight from the report cache.
    uint64_t cached_hits = 0;
    /// In batch items, not requests (one request can fan out items[]).
    int inflight = 0;
    int inflight_capacity = 0;
    /// Connections currently open (excludes over-capacity rejects).
    int open_connections = 0;
    /// Percentiles over successfully served /v1/diagnose requests only
    /// (healthz/stats probes and 429 sheds would swamp the window).
    harness::LatencyRecorder::Snapshot latency;
    bool cache_enabled = false;
    cache::ReportCache::Stats cache;
    /// Registry occupancy and eviction counters.
    DatasetRegistry::Stats registry;
    /// Incremental ingest: queries accepted via append (lifetime),
    /// encoding-cache counters, and the report-cache bytes of the last
    /// appended dataset that survived its append (a gauge recorded at
    /// append time — nonzero proves prefix-aware keys kept reports).
    uint64_t appended_queries = 0;
    bool encoding_cache_enabled = false;
    ingest::EncodingCache::Stats encoding_cache;
    uint64_t surviving_cache_bytes = 0;
    /// Per-tenant breakdown (weights, shares, sheds, latency), sorted
    /// by tenant name.
    std::vector<TenantGovernor::TenantStats> tenants;
    /// Seconds since Start() (0 when not running).
    double uptime_seconds = 0.0;
    /// GET /metrics responses served.
    uint64_t metrics_scrapes_total = 0;
    /// Flight-recorder occupancy and retention counters (all zero when
    /// trace_buffer_bytes == 0).
    obs::TraceRecorder::Stats trace_recorder;
    /// Watchdog events fired, by kind.
    uint64_t stalls_event_loop = 0;
    uint64_t stalls_solve_deadline = 0;
    uint64_t stalls_admission_starvation = 0;
  };
  Stats stats() const;

  /// The report cache, or nullptr when disabled (cache_bytes == 0).
  cache::ReportCache* report_cache() { return cache_.get(); }

  /// The telemetry registry behind GET /metrics. Exposed so embedders
  /// (and the obs bench) can scrape without a socket.
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// The flight recorder behind GET /v1/debug/traces, or nullptr when
  /// disabled (trace_buffer_bytes == 0).
  obs::TraceRecorder* recorder() { return recorder_.get(); }

 private:
  struct Counters {
    std::atomic<uint64_t> total{0};
    std::atomic<uint64_t> datasets{0};
    std::atomic<uint64_t> diagnose{0};
    std::atomic<uint64_t> health{0};
    std::atomic<uint64_t> stats{0};
    std::atomic<uint64_t> metrics{0};
    std::atomic<uint64_t> debug{0};
    std::atomic<uint64_t> shed{0};
    std::atomic<uint64_t> err4xx{0};
    std::atomic<uint64_t> err5xx{0};
    std::atomic<uint64_t> connections{0};
    std::atomic<uint64_t> items{0};
    std::atomic<uint64_t> cached_hits{0};
    std::atomic<uint64_t> append{0};
    std::atomic<uint64_t> appended_queries{0};
    /// Gauge: report-cache bytes of the appended dataset right after
    /// its most recent append (surviving entries).
    std::atomic<uint64_t> surviving_cache_bytes{0};
  };

  /// One event-loop thread plus the connections it owns (loop-thread
  /// local) and its registration on the shared listener.
  struct LoopShard;
  class Acceptor;
  friend class Acceptor;

  // ConnectionHost (called by Connection on the loop threads).
  const ConnectionHost::Config& conn_config() const override;
  bool shutting_down() const override;
  HttpResponse ErrorResponse(int http_status, const std::string& code,
                             const std::string& message) const override;
  bool HandleRequest(HttpRequest request, HttpResponse* out,
                     std::function<void(HttpResponse)> done) override;
  void CountResponse(int http_status) override;
  void RecordWritePhase(double seconds) override;
  void OnConnectionClosed(Connection* conn) override;

  /// Accepted `fd` lands on `shard`: admit as a served connection or
  /// reject with the canned 503 when over max_connections.
  void OnAccept(int fd, LoopShard* shard);
  /// Runs `handler` on the handler pool, then delivers its response
  /// through `done` (which hops back onto the connection's loop).
  void Offload(std::function<HttpResponse()> handler,
               std::function<void(HttpResponse)> done);

  HttpResponse HandleHealthz();
  HttpResponse HandleStats();
  HttpResponse HandleMetrics();
  HttpResponse HandleRegisterDataset(const HttpRequest& request);
  HttpResponse HandleAppend(const HttpRequest& request, std::string name);
  HttpResponse HandleDiagnose(const HttpRequest& request);
  /// The body of HandleDiagnose. The wrapper owns the TraceContext and
  /// completion bookkeeping (outcome classification, flight-recorder
  /// hand-off); the inner function fills `tenant`/`dataset` with the
  /// first item's attribution once decoded.
  HttpResponse DiagnoseInner(const HttpRequest& request,
                             obs::TraceContext& trace, std::string* tenant,
                             std::string* dataset);
  HttpResponse HandleDebugTraces(const HttpRequest& request);
  HttpResponse HandleDebugSleep(const HttpRequest& request);
  HttpResponse HandleDebugPayload(const HttpRequest& request);

  /// Hands a completed request's trace to the flight recorder (no-op
  /// when the recorder is disabled).
  void RecordTrace(const obs::TraceContext& trace, obs::TraceOutcome outcome,
                   int http_status, double duration_seconds,
                   const std::string& tenant, const std::string& dataset);
  /// The watchdog's stall callback: WARN log line, counter, and — when
  /// the event implicates a request — a force-retain pin.
  void OnStall(const obs::Watchdog::StallEvent& event);

  ServerOptions options_;
  ConnectionHost::Config conn_config_;
  DatasetRegistry registry_;
  std::unique_ptr<cache::ReportCache> cache_;
  /// Memoized chunk-prefix replay states (incremental ingest); null
  /// when encoding_cache_bytes == 0. Wired into every diagnosis's
  /// QFixOptions and warmed/invalidated by the registry.
  std::unique_ptr<ingest::EncodingCache> encoding_cache_;
  /// The shared solver pool (jobs) — caller-owned by every solve.
  std::unique_ptr<exec::ThreadPool> pool_;
  /// Small pool running blocking request handlers so the loop threads
  /// never block; sized to keep the admission gate saturatable.
  std::unique_ptr<exec::ThreadPool> handler_pool_;
  exec::CancellationSource shutdown_;

  int listen_fd_ = -1;
  int bound_port_ = 0;
  std::vector<std::unique_ptr<LoopShard>> shards_;
  std::atomic<bool> running_{false};

  /// Connections currently admitted (shared across shards).
  std::atomic<int> open_connections_{0};

  /// Admission gate for diagnosis work (and the debug sleep endpoint):
  /// weighted fair sharing per tenant, counted in batch items.
  std::unique_ptr<TenantGovernor> governor_;

  /// Flight recorder (null when trace_buffer_bytes == 0). Constructed
  /// once and never reset: the watchdog's monitor thread may pin into
  /// it between Stop() and destruction.
  std::unique_ptr<obs::TraceRecorder> recorder_;
  /// Stall watchdog; rebuilt on each Start() (heartbeats register per
  /// event-loop shard), stopped first thing in Stop().
  std::unique_ptr<obs::Watchdog> watchdog_;
  /// Stall events by kind (feeds qfix_stalls_total{kind} and stats()).
  std::atomic<uint64_t> stalls_event_loop_{0};
  std::atomic<uint64_t> stalls_solve_deadline_{0};
  std::atomic<uint64_t> stalls_admission_starvation_{0};

  /// Registers every metric family (owned instruments for phase/tenant
  /// latency + solver counters, scrape-time callbacks over the existing
  /// stats structs). Called once, at the end of the constructor.
  void SetupMetrics();

  Counters counters_;
  harness::LatencyRecorder latency_;
  double started_at_seconds_ = 0.0;

  obs::MetricsRegistry metrics_;
  // Owned instruments, resolved once in SetupMetrics(). Phase
  // histograms share one family (label: phase).
  obs::Histogram* phase_parse_ = nullptr;
  obs::Histogram* phase_cache_ = nullptr;
  obs::Histogram* phase_admission_ = nullptr;
  obs::Histogram* phase_encode_ = nullptr;
  obs::Histogram* phase_solve_ = nullptr;
  obs::Histogram* phase_render_ = nullptr;
  obs::Histogram* phase_write_ = nullptr;
  obs::HistogramFamily* diagnose_seconds_by_tenant_ = nullptr;
  obs::Counter* solver_nodes_total_ = nullptr;
  obs::Counter* solver_lp_iterations_total_ = nullptr;
  obs::Counter* solver_incumbent_updates_total_ = nullptr;
  obs::Counter* encoder_constraints_total_ = nullptr;
  obs::Counter* encoder_variables_total_ = nullptr;
  obs::Counter* encoder_prefix_reused_total_ = nullptr;
  obs::Counter* slow_requests_total_ = nullptr;
};

}  // namespace service
}  // namespace qfix

#endif  // QFIX_SERVICE_SERVER_H_
