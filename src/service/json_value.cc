#include "service/json_value.h"

#include <cmath>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace qfix {
namespace service {

bool JsonValue::AsBool() const {
  QFIX_CHECK(is_bool()) << "AsBool on non-bool JSON value";
  return bool_;
}

double JsonValue::AsNumber() const {
  QFIX_CHECK(is_number()) << "AsNumber on non-number JSON value";
  return number_;
}

const std::string& JsonValue::AsString() const {
  QFIX_CHECK(is_string()) << "AsString on non-string JSON value";
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  QFIX_CHECK(is_array()) << "AsArray on non-array JSON value";
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::AsObject()
    const {
  QFIX_CHECK(is_object()) << "AsObject on non-object JSON value";
  return members_;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<double> JsonValue::NumberOr(std::string_view key,
                                   double fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) {
    return Status::InvalidArgument(StringPrintf(
        "request field '%.*s' must be a number",
        static_cast<int>(key.size()), key.data()));
  }
  return v->AsNumber();
}

Result<bool> JsonValue::BoolOr(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) {
    return Status::InvalidArgument(StringPrintf(
        "request field '%.*s' must be a boolean",
        static_cast<int>(key.size()), key.data()));
  }
  return v->AsBool();
}

Result<std::string> JsonValue::RequiredString(std::string_view key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument(StringPrintf(
        "request field '%.*s' is required and must be a string",
        static_cast<int>(key.size()), key.data()));
  }
  return v->AsString();
}

JsonValue JsonValue::MakeNull() { return JsonValue(); }
JsonValue JsonValue::MakeBool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}
JsonValue JsonValue::MakeNumber(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}
JsonValue JsonValue::MakeString(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}
JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.items_ = std::move(items);
  return out;
}
JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.members_ = std::move(members);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view with an explicit cursor.
class Parser {
 public:
  Parser(std::string_view text, size_t max_depth, size_t max_nodes)
      : text_(text), max_depth_(max_depth), max_nodes_(max_nodes) {}

  Result<JsonValue> Parse() {
    QFIX_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StringPrintf("JSON parse error at byte %zu: %s", pos_,
                     what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ConsumeLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Result<JsonValue> ParseValue(size_t depth) {
    if (depth > max_depth_) return Error("nesting too deep");
    // Each parsed value costs sizeof(JsonValue) (~100 bytes), so a
    // body of "[1,1,1,...]" would amplify its own size ~50x in memory;
    // the node budget keeps one request's transient footprint bounded.
    if (++nodes_ > max_nodes_) return Error("too many values");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        QFIX_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::MakeString(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) return JsonValue::MakeBool(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) return JsonValue::MakeBool(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) return JsonValue::MakeNull();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(size_t depth) {
    ++pos_;  // '{'
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return JsonValue::MakeObject(std::move(members));
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      QFIX_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Error("expected ':' after object key");
      }
      ++pos_;
      QFIX_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      members.emplace_back(std::move(key), std::move(v));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return JsonValue::MakeObject(std::move(members));
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(size_t depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return JsonValue::MakeArray(std::move(items));
    }
    while (true) {
      QFIX_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      items.push_back(std::move(v));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Error("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return JsonValue::MakeArray(std::move(items));
      }
      return Error("expected ',' or ']' in array");
    }
  }

  // Appends the UTF-8 encoding of `cp` to `out`.
  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_ + i];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Error("invalid \\u escape digit");
      }
    }
    pos_ += 4;
    return v;
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return Error("truncated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          QFIX_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00-\uDFFF.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate");
            }
            pos_ += 2;
            QFIX_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
            if (lo < 0xDC00 || lo > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return Error("unpaired low surrogate");
          }
          AppendUtf8(cp, &out);
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
            text_[pos_] == '.' || text_[pos_] == 'e' ||
            text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a JSON value");
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(v)) {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue::MakeNumber(v);
  }

  std::string_view text_;
  size_t max_depth_;
  size_t max_nodes_;
  size_t nodes_ = 0;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text, size_t max_depth,
                            size_t max_nodes) {
  Parser parser(text, max_depth, max_nodes);
  return parser.Parse();
}

}  // namespace service
}  // namespace qfix
