#include "service/connection.h"

#include <strings.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/trace.h"

namespace qfix {
namespace service {

Connection::Connection(int fd, EventLoop* loop, ConnectionHost* host,
                       int loop_index, bool counted)
    : fd_(fd),
      loop_(loop),
      host_(host),
      loop_index_(loop_index),
      counted_(counted),
      parser_(host->conn_config().http) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

void Connection::Begin() {
  state_ = State::kReading;
  interest_ = EPOLLIN;
  (void)loop_->Add(fd_, EPOLLIN, this);
  ArmReadTimer();
}

void Connection::BeginReject(HttpResponse response) {
  interest_ = 0;
  (void)loop_->Add(fd_, 0, this);
  response.keep_alive = false;
  StartWrite(std::move(response));
}

void Connection::OnEvents(uint32_t events) {
  if (state_ == State::kClosed) return;
  if (events & (EPOLLERR | EPOLLHUP)) {
    Close();
    return;
  }
  if (events & EPOLLIN) {
    if (state_ == State::kReading) {
      OnReadable();
      return;
    }
    if (state_ == State::kDraining) {
      OnDrainReadable();
      return;
    }
    // Spurious/stale readiness in other states: ignored (interest is
    // narrowed via Mod, but a queued event can still be delivered).
  }
  if ((events & EPOLLOUT) && state_ == State::kWriting) TryFlush();
}

void Connection::OnReadable() {
  char buf[16384];
  for (;;) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      if (!got_request_bytes_) {
        got_request_bytes_ = true;
        // First byte of a keep-alive round: the budget switches from
        // the idle deadline to the read deadline. The first request's
        // read deadline runs from accept, so it is already armed.
        if (!first_request_) ArmReadTimer();
      }
      HttpRequestParser::State st =
          parser_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      if (st == HttpRequestParser::State::kComplete) {
        HandleParsedRequest();
        return;
      }
      if (st == HttpRequestParser::State::kError) {
        CancelTimer();
        StartWrite(host_->ErrorResponse(parser_.error_status(), "BadRequest",
                                        parser_.error()));
        return;
      }
      continue;  // kNeedMore: the kernel may hold more bytes
    }
    if (n == 0) {
      // Peer EOF before a complete request: nothing to answer (the old
      // server's kIdleClose), whether mid-request or between requests.
      Close();
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // stay armed
    Close();
    return;
  }
}

void Connection::HandleParsedRequest() {
  CancelTimer();
  ++served_;
  HttpRequest request = parser_.request();
  leftover_ = parser_.TakeLeftover();
  wants_keep_alive_ = request.WantsKeepAlive();
  // Adopt the client's X-Request-Id when it is safe to echo; otherwise
  // mint one. The sanitized id is written back into the request headers
  // so the handler and the response header agree on one id.
  request_id_.clear();
  if (const std::string* client_id = request.FindHeader("X-Request-Id")) {
    request_id_ = obs::SanitizeRequestId(*client_id);
  }
  if (request_id_.empty()) request_id_ = obs::GenerateRequestId();
  bool rewrote = false;
  for (auto& [name, value] : request.headers) {
    if (name.size() == 12 && strncasecmp(name.c_str(), "X-Request-Id", 12) == 0) {
      value = request_id_;
      rewrote = true;
      break;
    }
  }
  if (!rewrote) request.headers.emplace_back("X-Request-Id", request_id_);
  // No read interest while the request is in flight; pipelined bytes
  // already received sit in leftover_ until the response is out.
  SetInterest(0);

  HttpResponse inline_response;
  auto done = [this](HttpResponse response) {
    // Runs on a worker thread: hop back onto the loop. The connection
    // outlives the hop — even if it closed meanwhile it lingers as a
    // zombie until this completion reaps it.
    loop_->Post([this, response = std::move(response)]() mutable {
      CompleteDispatch(std::move(response));
    });
  };
  if (host_->HandleRequest(std::move(request), &inline_response,
                           std::move(done))) {
    FinishDispatch(std::move(inline_response));
    return;
  }
  state_ = State::kDispatching;
  dispatch_pending_ = true;
}

void Connection::CompleteDispatch(HttpResponse response) {
  dispatch_pending_ = false;
  if (state_ == State::kClosed) {
    // Zombie: the socket died while the handler ran. The response has
    // nowhere to go; hand the carcass back for deletion.
    host_->OnConnectionClosed(this);
    return;
  }
  FinishDispatch(std::move(response));
}

void Connection::FinishDispatch(HttpResponse response) {
  response.keep_alive = wants_keep_alive_ &&
                        served_ < host_->conn_config().max_requests_per_conn &&
                        !host_->shutting_down();
  StartWrite(std::move(response));
}

void Connection::StartWrite(HttpResponse response) {
  // Every response carries a request id — parse errors, 408s, and the
  // over-capacity reject path never reached HandleParsedRequest, so
  // they mint one here.
  if (request_id_.empty()) request_id_ = obs::GenerateRequestId();
  response.headers.emplace_back("X-Request-Id", request_id_);
  host_->CountResponse(response.status);
  // Every error response leaves a log line carrying the request id —
  // the id the client saw in its X-Request-Id header, so an error
  // report correlates with the server's log (and, for diagnose
  // requests, its retained trace) without guesswork. WARN level rides
  // the process-wide token bucket, so shed storms cannot flood the log.
  if (response.status >= 400) {
    LogEvent(LogLevel::kWarn, "request_error")
        .Str("request_id", request_id_)
        .Int("status", response.status);
  }
  keep_after_write_ = response.keep_alive;
  write_start_seconds_ = MonotonicSeconds();
  outbuf_ = response.Serialize();
  outoff_ = 0;
  state_ = State::kWriting;
  SetInterest(0);
  ArmWriteTimer();
  TryFlush();
}

void Connection::TryFlush() {
  while (outoff_ < outbuf_.size()) {
    ssize_t n = ::send(fd_, outbuf_.data() + outoff_, outbuf_.size() - outoff_,
                       MSG_NOSIGNAL);
    if (n >= 0) {
      outoff_ += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (host_->shutting_down()) {
        // Cooperative Stop(): don't wait out the write deadline on a
        // peer that isn't reading.
        Close();
        return;
      }
      SetInterest(EPOLLOUT);
      return;  // the write deadline stays armed
    }
    Close();  // EPIPE/ECONNRESET/...: peer is gone
    return;
  }
  FinishResponse();
}

void Connection::FinishResponse() {
  CancelTimer();
  if (write_start_seconds_ > 0.0) {
    host_->RecordWritePhase(MonotonicSeconds() - write_start_seconds_);
    write_start_seconds_ = 0.0;
  }
  outbuf_.clear();
  outoff_ = 0;
  if (!keep_after_write_) {
    EnterDrain();
    return;
  }
  NextRequest();
}

void Connection::NextRequest() {
  state_ = State::kReading;
  parser_.Reset();
  got_request_bytes_ = false;
  first_request_ = false;
  request_id_.clear();
  if (host_->shutting_down()) {
    Close();
    return;
  }
  if (!leftover_.empty()) {
    // Pipelined bytes already in hand: serve back-to-back without
    // waiting for readiness. Depth is bounded by max_requests_per_conn
    // (keep_alive goes false at the cap, ending the recursion).
    std::string pipelined;
    pipelined.swap(leftover_);
    got_request_bytes_ = true;
    HttpRequestParser::State st = parser_.Feed(pipelined);
    if (st == HttpRequestParser::State::kComplete) {
      HandleParsedRequest();
      return;
    }
    if (st == HttpRequestParser::State::kError) {
      StartWrite(host_->ErrorResponse(parser_.error_status(), "BadRequest",
                                      parser_.error()));
      return;
    }
  }
  SetInterest(EPOLLIN);
  ArmReadTimer();
}

void Connection::EnterDrain() {
  // Graceful close: announce FIN, then briefly drain whatever the
  // client already sent so close() doesn't turn into a RST that could
  // destroy the just-queued response.
  ::shutdown(fd_, SHUT_WR);
  state_ = State::kDraining;
  SetInterest(EPOLLIN);
  ArmDrainTimer();
}

void Connection::OnDrainReadable() {
  char buf[4096];
  for (int rounds = 0; rounds < 16; ++rounds) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) continue;
    if (n == 0) {
      Close();  // peer FIN: both directions done
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    Close();
    return;
  }
  Close();  // peer is flooding; don't drain forever
}

void Connection::OnReadTimeout() {
  if (state_ != State::kReading) return;
  if (!first_request_ && !got_request_bytes_) {
    // Keep-alive idle expiry between requests: quiet close.
    Close();
    return;
  }
  // A started (or first) request stalled: answer 408 then close.
  StartWrite(
      host_->ErrorResponse(408, "Timeout", "request not received in time"));
}

void Connection::OnShutdown() {
  switch (state_) {
    case State::kReading:
    case State::kWriting:
    case State::kDraining:
      Close();
      return;
    case State::kDispatching:
      // The handler is still running; its completion writes the final
      // response (keep_alive already false via shutting_down()).
      return;
    case State::kClosed:
      return;
  }
}

void Connection::Close() {
  if (state_ == State::kClosed) return;
  CancelTimer();
  if (fd_ >= 0) {
    loop_->Del(fd_);
    ::close(fd_);
    fd_ = -1;
  }
  state_ = State::kClosed;
  // With a dispatch in flight the object must outlive the socket (the
  // completion lambda holds `this`): reap on CompleteDispatch instead.
  if (!dispatch_pending_) host_->OnConnectionClosed(this);
}

void Connection::SetInterest(uint32_t events) {
  if (events == interest_ || fd_ < 0) return;
  interest_ = events;
  (void)loop_->Mod(fd_, events);
}

void Connection::ArmReadTimer() {
  CancelTimer();
  const ConnectionHost::Config& cfg = host_->conn_config();
  double budget = (first_request_ || got_request_bytes_)
                      ? cfg.read_timeout_seconds
                      : cfg.idle_timeout_seconds;
  timer_id_ = loop_->timers().Schedule(budget, [this] {
    timer_id_ = 0;
    OnReadTimeout();
  });
}

void Connection::ArmWriteTimer() {
  CancelTimer();
  timer_id_ = loop_->timers().Schedule(
      host_->conn_config().write_timeout_seconds, [this] {
        timer_id_ = 0;
        // The whole response didn't drain within the write budget: the
        // peer stopped reading. Cut it loose.
        Close();
      });
}

void Connection::ArmDrainTimer() {
  CancelTimer();
  timer_id_ = loop_->timers().Schedule(0.1, [this] {
    timer_id_ = 0;
    Close();
  });
}

void Connection::CancelTimer() {
  if (timer_id_ == 0) return;
  loop_->timers().Cancel(timer_id_);
  timer_id_ = 0;
}

}  // namespace service
}  // namespace qfix
