// Per-tenant admission control and serving statistics.
//
// A tenant is a dataset namespace: the prefix of the dataset name up to
// the first '/' ("acme/taxes" -> tenant "acme"; a name with no '/' is
// its own single-dataset tenant). The TenantGovernor layers weighted
// fair sharing on top of the server's item-weighted admission gate:
//
//   * Capacity is counted in batch items, exactly like the old global
//     gate — one slot per solve, cache hits take none.
//   * Every *contending* tenant owns a guaranteed share of the
//     capacity proportional to its weight (default 1, configurable per
//     tenant). Contending means "has work in flight, was shed within
//     the activity window (presumed retrying), or is asking right
//     now" — a shed tenant keeps its reservation, so a greedy tenant
//     can never starve a light one by winning the re-admission race
//     for every freed slot; a tenant that merely *finished* reserves
//     nothing and borrowing stays work-conserving.
//   * Admission below the guaranteed share only needs global room.
//     Admission above it (borrowing) must leave enough free capacity
//     for every under-share contending tenant to still reach its
//     share; otherwise the request sheds with 429. With a single
//     contending tenant this degenerates to the old global gate: its
//     share is the whole capacity.
//
// The governor also owns the per-tenant serving counters and latency
// recorders that GET /v1/stats renders: a slow tenant's solves land in
// its own recorder, so one tenant's p99 never skews another's.
#ifndef QFIX_SERVICE_TENANT_H_
#define QFIX_SERVICE_TENANT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "harness/metrics.h"

namespace qfix {
namespace service {

/// The tenant (dataset namespace) a dataset name belongs to: the prefix
/// before the first '/', or the whole name when it has none.
std::string_view TenantOf(std::string_view dataset_name);

class TenantGovernor {
 public:
  struct Options {
    /// Admission capacity in batch items, shared across tenants.
    int capacity = 8;
    /// How long after being shed a tenant keeps its guaranteed
    /// reservation while it (presumably) retries.
    double activity_window_seconds = 5.0;
  };

  explicit TenantGovernor(Options options);

  TenantGovernor(const TenantGovernor&) = delete;
  TenantGovernor& operator=(const TenantGovernor&) = delete;

  /// Sets a tenant's fair-share weight (clamped to >= 1). Safe at any
  /// time; takes effect on the next admission decision.
  void SetWeight(std::string_view tenant, int weight);

  /// One admitted request's slots across one or more tenants. Move-only
  /// RAII: destruction (or Release()) returns the slots.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept { *this = std::move(other); }
    Ticket& operator=(Ticket&& other) noexcept {
      Release();
      governor_ = other.governor_;
      acquired_ = std::move(other.acquired_);
      other.governor_ = nullptr;
      other.acquired_.clear();
      return *this;
    }
    ~Ticket() { Release(); }
    void Release();
    bool held() const { return governor_ != nullptr; }

   private:
    friend class TenantGovernor;
    TenantGovernor* governor_ = nullptr;
    std::vector<std::pair<std::string, int>> acquired_;
  };

  /// All-or-nothing weighted admission for one request. `wants` pairs
  /// each tenant (names must be distinct) with its item count; counts
  /// are capped at the gate capacity, so an oversized batch is still
  /// admittable on an idle gate — as with the old global gate — rather
  /// than shed forever. On success fills `*ticket` and returns true;
  /// on false nothing was acquired, the caller must shed with 429, and
  /// the shed tenants' reservations are stamped.
  bool TryAcquire(const std::vector<std::pair<std::string, int>>& wants,
                  Ticket* ticket);

  /// Total items currently admitted.
  int inflight() const;
  int capacity() const { return options_.capacity; }

  // Per-tenant serving counters (created on first touch).
  void CountRequest(std::string_view tenant);
  void CountShed(std::string_view tenant);
  void CountCachedHit(std::string_view tenant);
  void CountItems(std::string_view tenant, uint64_t items);
  void RecordLatency(std::string_view tenant, double seconds);

  /// Point-in-time view of one tenant (what /v1/stats renders).
  struct TenantStats {
    std::string name;
    int weight = 1;
    /// Guaranteed share of the capacity at snapshot time (0 when the
    /// tenant is idle with no live reservation).
    int share = 0;
    int inflight = 0;
    uint64_t requests = 0;
    uint64_t shed_429 = 0;
    uint64_t cached_hits = 0;
    uint64_t items = 0;
    harness::LatencyRecorder::Snapshot latency;
  };
  /// Every tenant ever seen, sorted by name.
  std::vector<TenantStats> Snapshot() const;

  /// Test hook: replaces the activity clock (monotonic seconds).
  void SetClockForTest(double (*clock)()) { clock_ = clock; }

 private:
  struct Tenant {
    int weight = 1;
    int inflight = 0;
    double last_shed = -1e18;  // reservation stamp (monotonic seconds)
    uint64_t requests = 0;
    uint64_t shed = 0;
    uint64_t cached_hits = 0;
    uint64_t items = 0;
    harness::LatencyRecorder latency{1024};
  };

  Tenant& TouchLocked(std::string_view tenant);
  bool ActiveLocked(const Tenant& t, double now) const;
  /// Guaranteed share for weight `w` out of active weight `total_w`.
  int ShareLocked(int w, int total_w) const;
  void Release(const std::vector<std::pair<std::string, int>>& acquired);

  Options options_;
  double (*clock_)();
  mutable std::mutex mu_;
  int total_inflight_ = 0;
  std::unordered_map<std::string, std::unique_ptr<Tenant>> tenants_;
};

}  // namespace service
}  // namespace qfix

#endif  // QFIX_SERVICE_TENANT_H_
