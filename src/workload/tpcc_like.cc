#include "workload/tpcc_like.h"

#include "common/logging.h"
#include "common/random.h"
#include "relational/executor.h"

namespace qfix {
namespace workload {

using relational::CmpOp;
using relational::Comparison;
using relational::Database;
using relational::LinearExpr;
using relational::ParamRef;
using relational::Predicate;
using relational::Query;
using relational::QueryLog;
using relational::Schema;

namespace {

// ORDER table columns (numeric projection of TPC-C's ORDER).
// o_id is the primary key (== tid); o_carrier_id is NULL (0) until the
// Delivery transaction assigns a carrier.
Schema OrderSchema() {
  return Schema({"o_id", "o_d_id", "o_w_id", "o_c_id", "o_entry_d",
                 "o_carrier_id", "o_ol_cnt", "o_all_local"});
}

std::vector<double> RandomOrderRow(Rng& rng, size_t o_id, bool delivered) {
  return {
      static_cast<double>(o_id),
      static_cast<double>(rng.UniformInt(1, 10)),    // district
      1.0,                                           // warehouse (scale 1)
      static_cast<double>(rng.UniformInt(1, 3000)),  // customer
      static_cast<double>(rng.UniformInt(1, 100000)),  // entry date
      delivered ? static_cast<double>(rng.UniformInt(1, 10)) : 0.0,
      static_cast<double>(rng.UniformInt(5, 15)),    // order lines
      1.0,                                           // all local
  };
}

}  // namespace

Scenario MakeTpccScenario(const TpccSpec& spec, size_t corrupt_age,
                          uint64_t seed) {
  QFIX_CHECK(corrupt_age < spec.num_queries)
      << "corruption age beyond log length";
  Rng rng(seed);

  Database d0(OrderSchema(), "ORDER");
  for (size_t i = 0; i < spec.initial_orders; ++i) {
    d0.AddTuple(RandomOrderRow(rng, i, /*delivered=*/rng.Bernoulli(0.7)));
  }

  QueryLog clean_log;
  clean_log.reserve(spec.num_queries);
  size_t next_o_id = spec.initial_orders;
  for (size_t i = 0; i < spec.num_queries; ++i) {
    if (rng.Bernoulli(spec.insert_fraction)) {
      // New-Order: INSERT INTO ORDER VALUES (...), undelivered.
      clean_log.push_back(Query::Insert(
          "ORDER", RandomOrderRow(rng, next_o_id, /*delivered=*/false)));
      ++next_o_id;
    } else {
      // Delivery: UPDATE ORDER SET o_carrier_id = ? WHERE o_id = ?.
      double target = static_cast<double>(
          rng.UniformInt(0, static_cast<int64_t>(next_o_id) - 1));
      clean_log.push_back(Query::Update(
          "ORDER",
          {{5, LinearExpr::Constant(
                   static_cast<double>(rng.UniformInt(1, 10)))}},
          Predicate::Atom(
              Comparison{LinearExpr::Attr(0), CmpOp::kEq, target})));
    }
  }

  // Corrupt one query, counted backwards from the most recent.
  size_t corrupt_index = spec.num_queries - 1 - corrupt_age;
  QueryLog dirty_log = clean_log;
  Query& q = dirty_log[corrupt_index];
  if (q.type() == relational::QueryType::kInsert) {
    // Corrupt the customer id and order-line count.
    q.mutable_insert_values()[3] =
        static_cast<double>(rng.UniformInt(3001, 6000));
    q.mutable_insert_values()[6] =
        static_cast<double>(rng.UniformInt(20, 40));
  } else {
    // Wrong carrier assigned to the wrong order.
    auto params = q.Params();
    for (const ParamRef& ref : params) {
      if (ref.kind == ParamRef::Kind::kSetConstant) {
        q.SetParam(ref, q.GetParam(ref) + 20.0);
      } else if (ref.kind == ParamRef::Kind::kWhereRhs) {
        double orig = q.GetParam(ref);
        double other = orig;
        while (other == orig) {
          other = static_cast<double>(
              rng.UniformInt(0, static_cast<int64_t>(next_o_id) - 1));
        }
        q.SetParam(ref, other);
      }
    }
  }

  return FinalizeScenario(std::move(d0), std::move(clean_log),
                          std::move(dirty_log), {corrupt_index});
}

}  // namespace workload
}  // namespace qfix
