#include "workload/scenario.h"

#include "relational/executor.h"

namespace qfix {
namespace workload {

Scenario FinalizeScenario(relational::Database d0,
                          relational::QueryLog clean_log,
                          relational::QueryLog dirty_log,
                          std::vector<size_t> corrupted_queries) {
  Scenario s;
  s.dirty = relational::ExecuteLog(dirty_log, d0);
  s.truth = relational::ExecuteLog(clean_log, d0);
  s.complaints = provenance::DiffStates(s.dirty, s.truth);
  s.d0 = std::move(d0);
  s.clean_log = std::move(clean_log);
  s.dirty_log = std::move(dirty_log);
  s.corrupted_queries = std::move(corrupted_queries);
  return s;
}

}  // namespace workload
}  // namespace qfix
