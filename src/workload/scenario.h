// A complete experiment scenario: clean log, corrupted log, both final
// states, and the derived true complaint set (the experimental protocol
// of §7.1).
#ifndef QFIX_WORKLOAD_SCENARIO_H_
#define QFIX_WORKLOAD_SCENARIO_H_

#include <vector>

#include "provenance/complaint.h"
#include "relational/database.h"
#include "relational/query.h"

namespace qfix {
namespace workload {

struct Scenario {
  relational::Database d0;
  relational::QueryLog clean_log;
  relational::QueryLog dirty_log;
  /// Q(D0): the observed, corrupted final state.
  relational::Database dirty;
  /// Q*(D0): the true final state (unknown to the repair algorithms;
  /// used for complaint derivation and accuracy scoring).
  relational::Database truth;
  /// The complete complaint set (tuple-wise diff of dirty vs truth).
  provenance::ComplaintSet complaints;
  /// Log indexes that were corrupted.
  std::vector<size_t> corrupted_queries;
};

/// Executes both logs and derives the complete complaint set.
Scenario FinalizeScenario(relational::Database d0,
                          relational::QueryLog clean_log,
                          relational::QueryLog dirty_log,
                          std::vector<size_t> corrupted_queries);

}  // namespace workload
}  // namespace qfix

#endif  // QFIX_WORKLOAD_SCENARIO_H_
