// TATP-like SUBSCRIBER workload (paper §7.4, Figure 9).
//
// Mirrors the paper's second benchmark: a SUBSCRIBER table of 5000 rows
// and a 2000-query UPDATE-only log of point updates on the subscriber
// key (TATP's UPDATE_SUBSCRIBER_DATA / UPDATE_LOCATION transactions).
#ifndef QFIX_WORKLOAD_TATP_LIKE_H_
#define QFIX_WORKLOAD_TATP_LIKE_H_

#include <cstdint>

#include "workload/scenario.h"

namespace qfix {
namespace workload {

struct TatpSpec {
  /// Initial SUBSCRIBER rows (paper: 5000).
  size_t subscribers = 5000;
  /// Log length (paper: 2000 UPDATEs).
  size_t num_queries = 2000;
};

/// Generates the scenario with one corrupted query, `corrupt_age` queries
/// before the end of the log (0 = most recent).
Scenario MakeTatpScenario(const TatpSpec& spec, size_t corrupt_age,
                          uint64_t seed);

}  // namespace workload
}  // namespace qfix

#endif  // QFIX_WORKLOAD_TATP_LIKE_H_
