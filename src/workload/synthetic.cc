#include "workload/synthetic.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"
#include "relational/executor.h"

namespace qfix {
namespace workload {

using relational::CmpOp;
using relational::Comparison;
using relational::Database;
using relational::LinearExpr;
using relational::ParamRef;
using relational::Predicate;
using relational::Query;
using relational::QueryLog;
using relational::QueryType;
using relational::Schema;
using relational::SetClause;

namespace {

constexpr size_t kIdAttr = 0;  // attribute 0 is the primary key `id`

Schema MakeSchema(size_t num_attrs) {
  std::vector<std::string> names;
  names.reserve(num_attrs + 1);
  names.push_back("id");
  for (size_t i = 0; i < num_attrs; ++i) {
    names.push_back(StringPrintf("a%zu", i));
  }
  return Schema(std::move(names));
}

double DrawValue(const SyntheticSpec& spec, Rng& rng) {
  return static_cast<double>(
      rng.UniformInt(0, static_cast<int64_t>(spec.value_domain)));
}

/// Per-dimension range width holding expected cardinality constant: the
/// one-dimensional selectivity is r / V_d, so each of the d conjuncts
/// uses width V_d * (r / V_d)^(1/d).
double PerDimensionRange(const SyntheticSpec& spec) {
  if (spec.where_dimensions <= 1) return spec.range_size;
  double sel = spec.range_size / spec.value_domain;
  return spec.value_domain *
         std::pow(sel, 1.0 / static_cast<double>(spec.where_dimensions));
}

/// Picks a (1-based) data attribute index, zipf-skewed when s > 0.
size_t PickAttr(const SyntheticSpec& spec, const ZipfianDistribution& zipf,
                Rng& rng) {
  if (spec.skew <= 0.0) return 1 + rng.Index(spec.num_attrs);
  return 1 + zipf.Sample(rng);
}

Predicate MakeWhere(const SyntheticSpec& spec,
                    const ZipfianDistribution& zipf, Rng& rng,
                    size_t current_rows) {
  if (spec.where_type == WhereClauseType::kPoint) {
    double key = static_cast<double>(
        rng.UniformInt(0, static_cast<int64_t>(current_rows) - 1));
    return Predicate::Atom(
        Comparison{LinearExpr::Attr(kIdAttr), CmpOp::kEq, key});
  }
  const double width = PerDimensionRange(spec);
  std::vector<Predicate> conjuncts;
  for (size_t d = 0; d < spec.where_dimensions; ++d) {
    size_t attr = PickAttr(spec, zipf, rng);
    // Keep the interval inside the value domain so the effective
    // selectivity matches the target instead of being clipped.
    double max_lo = std::max(0.0, spec.value_domain - width);
    double lo = static_cast<double>(
        rng.UniformInt(0, static_cast<int64_t>(max_lo)));
    conjuncts.push_back(Predicate::Between(attr, lo, lo + width));
  }
  return Predicate::And(std::move(conjuncts));
}

Query MakeUpdate(const SyntheticSpec& spec, const ZipfianDistribution& zipf,
                 Rng& rng, size_t current_rows) {
  size_t set_attr = PickAttr(spec, zipf, rng);
  LinearExpr expr =
      spec.set_type == SetClauseType::kConstant
          ? LinearExpr::Constant(DrawValue(spec, rng))
          : LinearExpr::AttrScaled(set_attr, 1.0, DrawValue(spec, rng));
  return Query::Update("T", {{set_attr, std::move(expr)}},
                       MakeWhere(spec, zipf, rng, current_rows));
}

Query MakeInsert(const SyntheticSpec& spec, Rng& rng, size_t next_id) {
  std::vector<double> values;
  values.reserve(spec.num_attrs + 1);
  values.push_back(static_cast<double>(next_id));
  for (size_t a = 0; a < spec.num_attrs; ++a) {
    values.push_back(DrawValue(spec, rng));
  }
  return Query::Insert("T", std::move(values));
}

}  // namespace

Database GenerateDatabase(const SyntheticSpec& spec, Rng& rng) {
  Database db(MakeSchema(spec.num_attrs), "T");
  for (size_t i = 0; i < spec.num_tuples; ++i) {
    std::vector<double> values;
    values.reserve(spec.num_attrs + 1);
    values.push_back(static_cast<double>(i));  // id == tid
    for (size_t a = 0; a < spec.num_attrs; ++a) {
      values.push_back(DrawValue(spec, rng));
    }
    db.AddTuple(std::move(values));
  }
  return db;
}

QueryLog GenerateLog(const SyntheticSpec& spec, const Database& d0,
                     Rng& rng) {
  QFIX_CHECK(spec.insert_fraction + spec.delete_fraction <= 1.0 + 1e-9);
  ZipfianDistribution zipf(spec.num_attrs, std::max(spec.skew, 1e-9));
  QueryLog log;
  log.reserve(spec.num_queries);
  size_t rows = d0.NumSlots();
  for (size_t i = 0; i < spec.num_queries; ++i) {
    double draw = rng.UniformReal(0.0, 1.0);
    if (draw < spec.insert_fraction) {
      log.push_back(MakeInsert(spec, rng, rows));
      ++rows;
    } else if (draw < spec.insert_fraction + spec.delete_fraction) {
      log.push_back(Query::Delete("T", MakeWhere(spec, zipf, rng, rows)));
    } else {
      log.push_back(MakeUpdate(spec, zipf, rng, rows));
    }
  }
  return log;
}

namespace {

// Redraws the constants of a WHERE tree following the generation
// procedure: a range [lo, lo + r] is redrawn as a new range of the same
// width (the paper's "[?, ?+r]" with a fresh ?), a point constant is
// redrawn outright. Redrawing both endpoints independently would create
// degenerate (empty) intervals the generator never produces.
void CorruptPredicate(Predicate& pred, const SyntheticSpec& spec, Rng& rng) {
  switch (pred.kind()) {
    case Predicate::Kind::kTrue:
      return;
    case Predicate::Kind::kComparison: {
      Comparison& cmp = pred.mutable_comparison();
      double corrupted = cmp.rhs;
      for (int tries = 0; tries < 64 && corrupted == cmp.rhs; ++tries) {
        corrupted = DrawValue(spec, rng);
      }
      cmp.rhs = corrupted;
      return;
    }
    case Predicate::Kind::kAnd: {
      // Detect the generator's BETWEEN pattern: And{attr >= lo,
      // attr <= hi} (possibly nested under a multi-dimension And).
      auto& children = pred.mutable_children();
      if (children.size() == 2 &&
          children[0].kind() == Predicate::Kind::kComparison &&
          children[1].kind() == Predicate::Kind::kComparison) {
        Comparison& lo = children[0].mutable_comparison();
        Comparison& hi = children[1].mutable_comparison();
        if (lo.op == CmpOp::kGe && hi.op == CmpOp::kLe &&
            lo.lhs == hi.lhs) {
          double width = hi.rhs - lo.rhs;
          double new_lo = lo.rhs;
          double max_lo = std::max(0.0, spec.value_domain - width);
          for (int tries = 0; tries < 64 && new_lo == lo.rhs; ++tries) {
            new_lo = static_cast<double>(
                rng.UniformInt(0, static_cast<int64_t>(max_lo)));
          }
          lo.rhs = new_lo;
          hi.rhs = new_lo + width;
          return;
        }
      }
      for (Predicate& c : children) CorruptPredicate(c, spec, rng);
      return;
    }
    case Predicate::Kind::kOr:
      for (Predicate& c : pred.mutable_children()) {
        CorruptPredicate(c, spec, rng);
      }
      return;
  }
}

}  // namespace

void CorruptQueryConstants(QueryLog& log, size_t index,
                           const SyntheticSpec& spec, Rng& rng) {
  QFIX_CHECK(index < log.size());
  Query& q = log[index];
  switch (q.type()) {
    case QueryType::kInsert:
      for (size_t a = 1; a < q.insert_values().size(); ++a) {
        double original = q.insert_values()[a];
        double corrupted = original;
        for (int tries = 0; tries < 64 && corrupted == original; ++tries) {
          corrupted = DrawValue(spec, rng);
        }
        q.mutable_insert_values()[a] = corrupted;
      }
      return;
    case QueryType::kUpdate:
      for (SetClause& sc : q.mutable_set_clauses()) {
        // Redraw the additive constant; multiplicative coefficients are
        // structural (1.0 for relative updates) and stay fixed.
        double original = sc.expr.constant();
        double corrupted = original;
        for (int tries = 0; tries < 64 && corrupted == original; ++tries) {
          corrupted = DrawValue(spec, rng);
        }
        sc.expr.set_constant(corrupted);
      }
      [[fallthrough]];
    case QueryType::kDelete:
      CorruptPredicate(q.mutable_where(), spec, rng);
      return;
  }
}

Scenario MakeSyntheticScenario(const SyntheticSpec& spec,
                               const std::vector<size_t>& corrupt_indexes,
                               uint64_t seed) {
  Rng rng(seed);
  Database d0 = GenerateDatabase(spec, rng);
  QueryLog clean_log = GenerateLog(spec, d0, rng);
  QueryLog dirty_log = clean_log;
  for (size_t idx : corrupt_indexes) {
    CorruptQueryConstants(dirty_log, idx, spec, rng);
  }
  return FinalizeScenario(std::move(d0), std::move(clean_log),
                          std::move(dirty_log), corrupt_indexes);
}

}  // namespace workload
}  // namespace qfix
