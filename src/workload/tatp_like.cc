#include "workload/tatp_like.h"

#include "common/logging.h"
#include "common/random.h"

namespace qfix {
namespace workload {

using relational::CmpOp;
using relational::Comparison;
using relational::Database;
using relational::LinearExpr;
using relational::ParamRef;
using relational::Predicate;
using relational::Query;
using relational::QueryLog;
using relational::Schema;

namespace {

Schema SubscriberSchema() {
  return Schema({"s_id", "bit_1", "hex_1", "byte2_1", "msc_location",
                 "vlr_location"});
}

}  // namespace

Scenario MakeTatpScenario(const TatpSpec& spec, size_t corrupt_age,
                          uint64_t seed) {
  QFIX_CHECK(corrupt_age < spec.num_queries);
  Rng rng(seed);

  Database d0(SubscriberSchema(), "SUBSCRIBER");
  for (size_t i = 0; i < spec.subscribers; ++i) {
    d0.AddTuple({static_cast<double>(i),
                 static_cast<double>(rng.UniformInt(0, 1)),
                 static_cast<double>(rng.UniformInt(0, 15)),
                 static_cast<double>(rng.UniformInt(0, 255)),
                 static_cast<double>(rng.UniformInt(0, 1 << 20)),
                 static_cast<double>(rng.UniformInt(0, 1 << 20))});
  }

  QueryLog clean_log;
  clean_log.reserve(spec.num_queries);
  for (size_t i = 0; i < spec.num_queries; ++i) {
    double key = static_cast<double>(
        rng.UniformInt(0, static_cast<int64_t>(spec.subscribers) - 1));
    Predicate where = Predicate::Atom(
        Comparison{LinearExpr::Attr(0), CmpOp::kEq, key});
    if (rng.Bernoulli(0.5)) {
      // UPDATE_SUBSCRIBER_DATA: SET bit_1 = ?, byte2_1 = ?.
      clean_log.push_back(Query::Update(
          "SUBSCRIBER",
          {{1, LinearExpr::Constant(
                   static_cast<double>(rng.UniformInt(0, 1)))},
           {3, LinearExpr::Constant(
                   static_cast<double>(rng.UniformInt(0, 255)))}},
          std::move(where)));
    } else {
      // UPDATE_LOCATION: SET vlr_location = ?.
      clean_log.push_back(Query::Update(
          "SUBSCRIBER",
          {{5, LinearExpr::Constant(
                   static_cast<double>(rng.UniformInt(0, 1 << 20)))}},
          std::move(where)));
    }
  }

  size_t corrupt_index = spec.num_queries - 1 - corrupt_age;
  QueryLog dirty_log = clean_log;
  Query& q = dirty_log[corrupt_index];
  for (const ParamRef& ref : q.Params()) {
    if (ref.kind == ParamRef::Kind::kWhereRhs) {
      double orig = q.GetParam(ref);
      double other = orig;
      while (other == orig) {
        other = static_cast<double>(
            rng.UniformInt(0, static_cast<int64_t>(spec.subscribers) - 1));
      }
      q.SetParam(ref, other);
    } else if (ref.kind == ParamRef::Kind::kSetConstant) {
      q.SetParam(ref, q.GetParam(ref) + 7.0);
    }
  }

  return FinalizeScenario(std::move(d0), std::move(clean_log),
                          std::move(dirty_log), {corrupt_index});
}

}  // namespace workload
}  // namespace qfix
