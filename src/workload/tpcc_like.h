// TPC-C-like ORDER-table workload (paper §7.4, Figure 9).
//
// OLTP-bench is a Java harness unavailable offline; this generator emits
// the same query shapes QFix sees in the paper's TPC-C experiment: the
// ORDER table at warehouse scale 1 (6000 initial rows), a 2000-query log
// that is ~92% New-Order INSERTs with the remainder Delivery UPDATEs
// (point predicates on the order key setting o_carrier_id). QFix only
// observes the update log and the table states, so matching the mix,
// predicate shapes, and sizes exercises the identical code paths
// (substitution documented in DESIGN.md).
#ifndef QFIX_WORKLOAD_TPCC_LIKE_H_
#define QFIX_WORKLOAD_TPCC_LIKE_H_

#include <cstdint>

#include "workload/scenario.h"

namespace qfix {
namespace workload {

struct TpccSpec {
  /// Initial ORDER rows (paper: 6000, scale 1, one warehouse).
  size_t initial_orders = 6000;
  /// Log length (paper: 2000 with 1837 INSERTs).
  size_t num_queries = 2000;
  /// INSERT share of the log (paper: 1837 / 2000).
  double insert_fraction = 1837.0 / 2000.0;
};

/// Generates the scenario with a single corrupted query at `corrupt_index`
/// (an index from the *end*: 0 = most recent query, matching the paper's
/// "vary corrupted query's index from q_N to q_{N-1500}").
Scenario MakeTpccScenario(const TpccSpec& spec, size_t corrupt_age,
                          uint64_t seed);

}  // namespace workload
}  // namespace qfix

#endif  // QFIX_WORKLOAD_TPCC_LIKE_H_
