// Synthetic workload generator (paper §7.1).
//
// Schema: primary key `id` plus Na attributes a0..a{Na-1} with integer
// values drawn uniformly from [0, Vd]. UPDATE queries combine a Constant
// or Relative SET clause with a Point (key) or Range (non-key) WHERE
// clause; DELETE shares the WHERE shapes; INSERT draws fresh uniform
// values. The zipf parameter s skews which attributes queries touch
// (Fig. 8d), and the WHERE dimensionality knob adds conjuncts while
// holding query cardinality constant (Fig. 8e).
#ifndef QFIX_WORKLOAD_SYNTHETIC_H_
#define QFIX_WORKLOAD_SYNTHETIC_H_

#include <cstdint>

#include "common/random.h"
#include "workload/scenario.h"

namespace qfix {
namespace workload {

enum class SetClauseType { kConstant, kRelative };
enum class WhereClauseType { kPoint, kRange };

struct SyntheticSpec {
  /// N_D: initial database size. Paper default 1000.
  size_t num_tuples = 1000;
  /// N_a: non-key attributes. Paper default 10.
  size_t num_attrs = 10;
  /// V_d: attribute value domain [0, V_d]. Paper default 200.
  double value_domain = 200;
  /// N_q: log length. Paper default 300.
  size_t num_queries = 300;
  SetClauseType set_type = SetClauseType::kConstant;
  WhereClauseType where_type = WhereClauseType::kRange;
  /// Range width r; the paper's default selectivity 2% of V_d = 200 is
  /// r = 4.
  double range_size = 4;
  /// Number of conjuncts in range WHERE clauses (Fig. 8e). Each extra
  /// dimension shrinks the per-dimension width so that the expected
  /// query cardinality stays constant.
  size_t where_dimensions = 1;
  /// Attribute skew s: 0 = uniform; higher concentrates SET/WHERE
  /// attribute choices on low attribute indexes (Fig. 8d).
  double skew = 0.0;
  /// Query type mix; fractions must sum to <= 1 with the remainder
  /// going to UPDATE.
  double insert_fraction = 0.0;
  double delete_fraction = 0.0;
};

/// Generates the initial database D0 (id column = tid).
relational::Database GenerateDatabase(const SyntheticSpec& spec, Rng& rng);

/// Generates a log of `spec.num_queries` queries against `d0`'s schema.
relational::QueryLog GenerateLog(const SyntheticSpec& spec,
                                 const relational::Database& d0, Rng& rng);

/// Corrupts the constants of `log[index]` in place: every parameter is
/// redrawn from the generation distribution until it differs from the
/// original (the paper's same-type replacement, restricted to constants
/// so that repairs-by-constants remain well-posed; see DESIGN.md).
void CorruptQueryConstants(relational::QueryLog& log, size_t index,
                           const SyntheticSpec& spec, Rng& rng);

/// End-to-end §7.1 protocol: generate D0 and a clean log, corrupt the
/// queries at `corrupt_indexes`, execute both logs, and diff the final
/// states into the complete complaint set.
Scenario MakeSyntheticScenario(const SyntheticSpec& spec,
                               const std::vector<size_t>& corrupt_indexes,
                               uint64_t seed);

}  // namespace workload
}  // namespace qfix

#endif  // QFIX_WORKLOAD_SYNTHETIC_H_
