// Log diff: renders the difference between an executed query log Q and a
// repaired log Q* as SQL, unified-diff style, with a per-parameter change
// list. This is how QFix presents a diagnosis to the administrator who
// must validate it (§1: repairs are confirmed by an expert before being
// applied).
//
//   @@ q1 (UPDATE Taxes) @@
//   - UPDATE Taxes SET owed = income * 0.3 WHERE income >= 85700;
//   + UPDATE Taxes SET owed = income * 0.3 WHERE income >= 87500;
//       WHERE atom #0 threshold: 85700 -> 87500 (+1800)
#ifndef QFIX_SQL_DIFF_H_
#define QFIX_SQL_DIFF_H_

#include <string>
#include <vector>

#include "relational/query.h"
#include "relational/schema.h"

namespace qfix {
namespace sql {

/// One repaired constant inside a query.
struct ParamChange {
  relational::ParamRef ref;
  double before = 0.0;
  double after = 0.0;
  /// Human-readable location, e.g. "SET owed constant" or
  /// "WHERE atom #2 threshold".
  std::string where;
};

/// One query whose parameters differ between the two logs.
struct QueryDiff {
  /// Position in the log (0 = oldest, matching q_{index+1} in the paper).
  size_t index = 0;
  std::string original_sql;
  std::string repaired_sql;
  std::vector<ParamChange> params;
};

/// Compares two structurally identical logs (same queries, possibly
/// different constants) and returns the queries whose parameters changed,
/// in log order. Tolerance `tol` suppresses floating-point dust.
std::vector<QueryDiff> DiffLogs(const relational::QueryLog& original,
                                const relational::QueryLog& repaired,
                                const relational::Schema& schema,
                                double tol = 1e-9);

/// Renders DiffLogs output as unified-diff-style text. Returns
/// "(no query changes)\n" for an empty diff.
std::string FormatLogDiff(const std::vector<QueryDiff>& diffs);

/// Convenience: DiffLogs + FormatLogDiff.
std::string FormatLogDiff(const relational::QueryLog& original,
                          const relational::QueryLog& repaired,
                          const relational::Schema& schema);

}  // namespace sql
}  // namespace qfix

#endif  // QFIX_SQL_DIFF_H_
