#include "sql/lexer.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <unordered_set>

#include "common/strings.h"

namespace qfix {
namespace sql {
namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* kKeywords = new std::unordered_set<std::string>{
      "UPDATE", "SET",    "WHERE", "INSERT", "INTO", "VALUES",
      "DELETE", "FROM",   "AND",   "OR",     "TRUE", "BETWEEN",
      "IN",     "TABLE",
  };
  return *kKeywords;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(input[i])) ||
                       input[i] == '_')) {
        ++i;
      }
      std::string word(input.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (Keywords().count(upper)) {
        tokens.push_back({TokenType::kKeyword, upper, 0.0, start});
      } else {
        tokens.push_back({TokenType::kIdentifier, word, 0.0, start});
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.')) {
        ++i;
      }
      // Optional exponent.
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t exp = i + 1;
        if (exp < n && (input[exp] == '+' || input[exp] == '-')) ++exp;
        if (exp < n && std::isdigit(static_cast<unsigned char>(input[exp]))) {
          i = exp;
          while (i < n &&
                 std::isdigit(static_cast<unsigned char>(input[i]))) {
            ++i;
          }
        }
      }
      std::string text(input.substr(start, i - start));
      char* end = nullptr;
      double value = std::strtod(text.c_str(), &end);
      if (end == nullptr || *end != '\0') {
        return Status::InvalidArgument(
            StringPrintf("bad numeric literal '%s' at offset %zu",
                         text.c_str(), start));
      }
      if (!std::isfinite(value)) {
        // An infinite constant would poison the MILP encoding (Model
        // validation rejects non-finite coefficients downstream).
        return Status::InvalidArgument(
            StringPrintf("numeric literal '%s' at offset %zu overflows "
                         "double precision",
                         text.c_str(), start));
      }
      tokens.push_back({TokenType::kNumber, text, value, start});
      continue;
    }
    // Two-character operators first.
    if (i + 1 < n) {
      std::string two(input.substr(i, 2));
      if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
        tokens.push_back({TokenType::kSymbol, two, 0.0, i});
        i += 2;
        continue;
      }
    }
    switch (c) {
      case '(':
      case ')':
      case '[':
      case ']':
      case ',':
      case ';':
      case '+':
      case '-':
      case '*':
      case '/':
      case '=':
      case '<':
      case '>':
        tokens.push_back({TokenType::kSymbol, std::string(1, c), 0.0, i});
        ++i;
        break;
      default:
        return Status::InvalidArgument(
            StringPrintf("unexpected character '%c' at offset %zu", c, i));
    }
  }
  tokens.push_back({TokenType::kEnd, "", 0.0, n});
  return tokens;
}

}  // namespace sql
}  // namespace qfix
