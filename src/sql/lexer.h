// Tokenizer for the supported SQL subset.
#ifndef QFIX_SQL_LEXER_H_
#define QFIX_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace qfix {
namespace sql {

enum class TokenType {
  kIdentifier,  // attribute / table names (case-preserved)
  kKeyword,     // UPDATE, SET, WHERE, ... (upper-cased)
  kNumber,
  kSymbol,  // ( ) [ ] , ; + - * / = <= < >= > <> !=
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;    // keyword/symbol text, identifier name
  double number = 0.0; // kNumber only
  size_t offset = 0;   // byte offset into the input, for error messages
};

/// Splits `input` into tokens. Keywords are recognized case-insensitively
/// and normalized to upper case. Returns InvalidArgument on characters
/// outside the language.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace sql
}  // namespace qfix

#endif  // QFIX_SQL_LEXER_H_
