// Parser for the supported SQL subset (paper §3, problem scope):
//
//   UPDATE <table> SET a = <linear-expr> [, ...] [WHERE <pred>]
//   INSERT INTO <table> VALUES (<num>, ...)
//   DELETE FROM <table> [WHERE <pred>]
//
//   <pred>  := disjunctions/conjunctions of comparisons, parentheses,
//              BETWEEN lo AND hi, attr IN [lo, hi], TRUE
//   <linear-expr> := sums/differences of attributes, numeric literals,
//              and products of an attribute with a constant
//
// No subqueries, joins, aggregation, or UDFs — exactly the fragment QFix
// repairs. Comparisons are normalized to `linear-expr op constant` with
// every literal folded into the right-hand constant, which becomes the
// atom's repairable parameter.
#ifndef QFIX_SQL_PARSER_H_
#define QFIX_SQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "relational/query.h"
#include "relational/schema.h"

namespace qfix {
namespace sql {

/// Parses one statement. Attribute names resolve against `schema`.
Result<relational::Query> ParseQuery(std::string_view sql,
                                     const relational::Schema& schema);

/// Parses a ';'-separated sequence of statements into a query log.
Result<relational::QueryLog> ParseLog(std::string_view sql,
                                      const relational::Schema& schema);

}  // namespace sql
}  // namespace qfix

#endif  // QFIX_SQL_PARSER_H_
