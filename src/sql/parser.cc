#include "sql/parser.h"

#include <utility>
#include <vector>

#include "common/strings.h"
#include "sql/lexer.h"

namespace qfix {
namespace sql {
namespace {

using relational::CmpOp;
using relational::Comparison;
using relational::LinearExpr;
using relational::Predicate;
using relational::Query;
using relational::QueryLog;
using relational::Schema;
using relational::SetClause;

/// Recursive-descent parser over a token stream.
class Parser {
 public:
  Parser(std::vector<Token> tokens, const Schema& schema)
      : tokens_(std::move(tokens)), schema_(schema) {}

  Result<Query> ParseStatement() {
    QFIX_ASSIGN_OR_RETURN(Query q, ParseStatementBody());
    // Optional trailing semicolon, then end of input.
    (void)ConsumeSymbol(";");
    if (!AtEnd()) {
      return Error("trailing input after statement");
    }
    return q;
  }

  Result<QueryLog> ParseStatements() {
    QueryLog log;
    while (!AtEnd()) {
      QFIX_ASSIGN_OR_RETURN(Query q, ParseStatementBody());
      log.push_back(std::move(q));
      if (!ConsumeSymbol(";") && !AtEnd()) {
        return Error("expected ';' between statements");
      }
    }
    return log;
  }

 private:
  Result<Query> ParseStatementBody() {
    if (ConsumeKeyword("UPDATE")) return ParseUpdate();
    if (ConsumeKeyword("INSERT")) return ParseInsert();
    if (ConsumeKeyword("DELETE")) return ParseDelete();
    return Error("expected UPDATE, INSERT, or DELETE");
  }

  Result<Query> ParseUpdate() {
    QFIX_ASSIGN_OR_RETURN(std::string table, ExpectIdentifier("table name"));
    if (!ConsumeKeyword("SET")) return Error("expected SET");
    std::vector<SetClause> sets;
    do {
      QFIX_ASSIGN_OR_RETURN(std::string attr,
                            ExpectIdentifier("attribute name"));
      QFIX_ASSIGN_OR_RETURN(size_t attr_idx, schema_.AttrIndex(attr));
      if (!ConsumeSymbol("=")) return Error("expected '=' in SET clause");
      QFIX_ASSIGN_OR_RETURN(LinearExpr expr, ParseLinearExpr());
      sets.push_back({attr_idx, std::move(expr)});
    } while (ConsumeSymbol(","));
    QFIX_ASSIGN_OR_RETURN(Predicate where, ParseOptionalWhere());
    return Query::Update(std::move(table), std::move(sets),
                         std::move(where));
  }

  Result<Query> ParseInsert() {
    if (!ConsumeKeyword("INTO")) return Error("expected INTO");
    QFIX_ASSIGN_OR_RETURN(std::string table, ExpectIdentifier("table name"));
    if (!ConsumeKeyword("VALUES")) return Error("expected VALUES");
    if (!ConsumeSymbol("(")) return Error("expected '('");
    std::vector<double> values;
    do {
      QFIX_ASSIGN_OR_RETURN(double v, ExpectSignedNumber());
      values.push_back(v);
    } while (ConsumeSymbol(","));
    if (!ConsumeSymbol(")")) return Error("expected ')'");
    if (values.size() != schema_.num_attrs()) {
      return Error(StringPrintf("INSERT provides %zu values; schema has %zu",
                                values.size(), schema_.num_attrs()));
    }
    return Query::Insert(std::move(table), std::move(values));
  }

  Result<Query> ParseDelete() {
    if (!ConsumeKeyword("FROM")) return Error("expected FROM");
    QFIX_ASSIGN_OR_RETURN(std::string table, ExpectIdentifier("table name"));
    QFIX_ASSIGN_OR_RETURN(Predicate where, ParseOptionalWhere());
    return Query::Delete(std::move(table), std::move(where));
  }

  Result<Predicate> ParseOptionalWhere() {
    if (!ConsumeKeyword("WHERE")) return Predicate::True();
    return ParseOr();
  }

  Result<Predicate> ParseOr() {
    std::vector<Predicate> children;
    QFIX_ASSIGN_OR_RETURN(Predicate first, ParseAnd());
    children.push_back(std::move(first));
    while (ConsumeKeyword("OR")) {
      QFIX_ASSIGN_OR_RETURN(Predicate next, ParseAnd());
      children.push_back(std::move(next));
    }
    return Predicate::Or(std::move(children));
  }

  Result<Predicate> ParseAnd() {
    std::vector<Predicate> children;
    QFIX_ASSIGN_OR_RETURN(Predicate first, ParseFactor());
    children.push_back(std::move(first));
    while (ConsumeKeyword("AND")) {
      QFIX_ASSIGN_OR_RETURN(Predicate next, ParseFactor());
      children.push_back(std::move(next));
    }
    return Predicate::And(std::move(children));
  }

  Result<Predicate> ParseFactor() {
    if (ConsumeKeyword("TRUE")) return Predicate::True();
    if (ConsumeSymbol("(")) {
      // Depth cap: the predicate grammar recurses through '(' and the
      // parser is network-facing (POST /v1/datasets), so megabytes of
      // '(' must be an error, not a stack overflow. 64 is far beyond
      // any legitimate WHERE clause.
      if (++paren_depth_ > kMaxParenDepth) {
        return Error("predicate nesting exceeds " +
                     std::to_string(kMaxParenDepth) + " parentheses");
      }
      auto inner = ParseOr();
      --paren_depth_;
      if (!inner.ok()) return inner.status();
      if (!ConsumeSymbol(")")) return Error("expected ')'");
      return std::move(inner).value();
    }
    return ParseComparison();
  }

  Result<Predicate> ParseComparison() {
    QFIX_ASSIGN_OR_RETURN(LinearExpr lhs, ParseLinearExpr());

    if (ConsumeKeyword("BETWEEN")) {
      QFIX_ASSIGN_OR_RETURN(double lo, ExpectSignedNumber());
      if (!ConsumeKeyword("AND")) return Error("expected AND in BETWEEN");
      QFIX_ASSIGN_OR_RETURN(double hi, ExpectSignedNumber());
      return MakeRange(std::move(lhs), lo, hi);
    }
    if (ConsumeKeyword("IN")) {
      if (!ConsumeSymbol("[")) return Error("expected '[' after IN");
      QFIX_ASSIGN_OR_RETURN(double lo, ExpectSignedNumber());
      if (!ConsumeSymbol(",")) return Error("expected ',' in IN range");
      QFIX_ASSIGN_OR_RETURN(double hi, ExpectSignedNumber());
      if (!ConsumeSymbol("]")) return Error("expected ']' after IN range");
      return MakeRange(std::move(lhs), lo, hi);
    }

    CmpOp op;
    if (ConsumeSymbol("<=")) {
      op = CmpOp::kLe;
    } else if (ConsumeSymbol(">=")) {
      op = CmpOp::kGe;
    } else if (ConsumeSymbol("<>") || ConsumeSymbol("!=")) {
      op = CmpOp::kNeq;
    } else if (ConsumeSymbol("<")) {
      op = CmpOp::kLt;
    } else if (ConsumeSymbol(">")) {
      op = CmpOp::kGt;
    } else if (ConsumeSymbol("=")) {
      op = CmpOp::kEq;
    } else {
      return Error("expected comparison operator");
    }
    QFIX_ASSIGN_OR_RETURN(LinearExpr rhs, ParseLinearExpr());

    // Normalize to `attr-terms op constant`: every literal lands in the
    // right-hand constant, the atom's repairable parameter.
    LinearExpr combined = std::move(lhs);
    combined -= rhs;
    double rhs_const = -combined.constant();
    combined.set_constant(0.0);
    return Predicate::Atom(Comparison{std::move(combined), op, rhs_const});
  }

  Result<Predicate> MakeRange(LinearExpr lhs, double lo, double hi) {
    double shift = lhs.constant();
    lhs.set_constant(0.0);
    LinearExpr copy = lhs;
    return Predicate::And(
        {Predicate::Atom(Comparison{std::move(lhs), CmpOp::kGe, lo - shift}),
         Predicate::Atom(
             Comparison{std::move(copy), CmpOp::kLe, hi - shift})});
  }

  // linear-expr := term (('+'|'-') term)*
  Result<LinearExpr> ParseLinearExpr() {
    QFIX_ASSIGN_OR_RETURN(LinearExpr expr, ParseTerm());
    while (true) {
      if (ConsumeSymbol("+")) {
        QFIX_ASSIGN_OR_RETURN(LinearExpr t, ParseTerm());
        expr += t;
      } else if (ConsumeSymbol("-")) {
        QFIX_ASSIGN_OR_RETURN(LinearExpr t, ParseTerm());
        expr -= t;
      } else {
        return expr;
      }
    }
  }

  // term := unary (('*'|'/') unary)*, restricted to keep linearity.
  Result<LinearExpr> ParseTerm() {
    QFIX_ASSIGN_OR_RETURN(LinearExpr expr, ParseUnary());
    while (true) {
      if (ConsumeSymbol("*")) {
        QFIX_ASSIGN_OR_RETURN(LinearExpr rhs, ParseUnary());
        if (rhs.IsConstant()) {
          expr *= rhs.constant();
        } else if (expr.IsConstant()) {
          double k = expr.constant();
          expr = std::move(rhs);
          expr *= k;
        } else {
          return Error("non-linear product of two attribute expressions");
        }
      } else if (ConsumeSymbol("/")) {
        QFIX_ASSIGN_OR_RETURN(LinearExpr rhs, ParseUnary());
        if (!rhs.IsConstant() || rhs.constant() == 0.0) {
          return Error("division must be by a non-zero constant");
        }
        expr *= 1.0 / rhs.constant();
      } else {
        return expr;
      }
    }
  }

  // unary := ('-')* primary;  primary := number | attr | '(' expr ')'
  Result<LinearExpr> ParseUnary() {
    if (ConsumeSymbol("-")) {
      QFIX_ASSIGN_OR_RETURN(LinearExpr inner, ParseUnary());
      inner *= -1.0;
      return inner;
    }
    if (Peek().type == TokenType::kNumber) {
      double v = Peek().number;
      Advance();
      return LinearExpr::Constant(v);
    }
    if (Peek().type == TokenType::kIdentifier) {
      QFIX_ASSIGN_OR_RETURN(size_t attr, schema_.AttrIndex(Peek().text));
      Advance();
      return LinearExpr::Attr(attr);
    }
    if (ConsumeSymbol("(")) {
      QFIX_ASSIGN_OR_RETURN(LinearExpr inner, ParseLinearExpr());
      if (!ConsumeSymbol(")")) return Error("expected ')'");
      return inner;
    }
    return Error("expected number, attribute, or '('");
  }

  // --- token-stream helpers ---

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  bool ConsumeKeyword(std::string_view kw) {
    if (Peek().type == TokenType::kKeyword && Peek().text == kw) {
      Advance();
      return true;
    }
    return false;
  }

  bool ConsumeSymbol(std::string_view sym) {
    if (Peek().type == TokenType::kSymbol && Peek().text == sym) {
      Advance();
      return true;
    }
    return false;
  }

  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error(std::string("expected ") + std::string(what));
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  Result<double> ExpectSignedNumber() {
    double sign = 1.0;
    while (ConsumeSymbol("-")) sign = -sign;
    if (Peek().type != TokenType::kNumber) {
      return Error("expected numeric literal");
    }
    double v = sign * Peek().number;
    Advance();
    return v;
  }

  Status Error(std::string message) const {
    return Status::InvalidArgument(StringPrintf(
        "%s (near offset %zu, at '%s')", message.c_str(), Peek().offset,
        Peek().type == TokenType::kEnd ? "<end>" : Peek().text.c_str()));
  }

  static constexpr int kMaxParenDepth = 64;

  std::vector<Token> tokens_;
  const Schema& schema_;
  size_t pos_ = 0;
  int paren_depth_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view sql, const Schema& schema) {
  QFIX_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens), schema);
  return parser.ParseStatement();
}

Result<QueryLog> ParseLog(std::string_view sql, const Schema& schema) {
  QFIX_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens), schema);
  return parser.ParseStatements();
}

}  // namespace sql
}  // namespace qfix
