#include "sql/diff.h"

#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace qfix {
namespace sql {

namespace {

// Human-readable location of one repairable constant.
std::string DescribeParam(const relational::Query& q,
                          const relational::ParamRef& ref,
                          const relational::Schema& schema) {
  using Kind = relational::ParamRef::Kind;
  switch (ref.kind) {
    case Kind::kSetConstant: {
      const auto& clause = q.set_clauses()[ref.index];
      return "SET " + schema.attr_name(clause.attr) + " constant";
    }
    case Kind::kSetCoeff: {
      const auto& clause = q.set_clauses()[ref.index];
      return "SET " + schema.attr_name(clause.attr) +
             StringPrintf(" coefficient #%zu", ref.term);
    }
    case Kind::kWhereRhs:
      return StringPrintf("WHERE atom #%zu threshold", ref.index);
    case Kind::kInsertValue:
      if (ref.index < schema.num_attrs()) {
        return "VALUE " + schema.attr_name(ref.index);
      }
      return StringPrintf("VALUE #%zu", ref.index);
  }
  return "parameter";
}

}  // namespace

std::vector<QueryDiff> DiffLogs(const relational::QueryLog& original,
                                const relational::QueryLog& repaired,
                                const relational::Schema& schema,
                                double tol) {
  QFIX_CHECK(original.size() == repaired.size())
      << "log diff requires structurally identical logs: " << original.size()
      << " vs " << repaired.size() << " queries";
  std::vector<QueryDiff> out;
  for (size_t i = 0; i < original.size(); ++i) {
    const relational::Query& a = original[i];
    const relational::Query& b = repaired[i];
    QFIX_CHECK(a.type() == b.type())
        << "query " << i << " changed type; repairs alter constants only";
    std::vector<relational::ParamRef> params = a.Params();
    QFIX_CHECK(params.size() == b.Params().size())
        << "query " << i << " changed shape";

    QueryDiff diff;
    diff.index = i;
    for (const relational::ParamRef& ref : params) {
      double before = a.GetParam(ref);
      double after = b.GetParam(ref);
      if (std::fabs(before - after) <= tol) continue;
      diff.params.push_back({ref, before, after, DescribeParam(a, ref, schema)});
    }
    if (diff.params.empty()) continue;
    diff.original_sql = a.ToSql(schema);
    diff.repaired_sql = b.ToSql(schema);
    out.push_back(std::move(diff));
  }
  return out;
}

std::string FormatLogDiff(const std::vector<QueryDiff>& diffs) {
  if (diffs.empty()) return "(no query changes)\n";
  std::string out;
  for (const QueryDiff& d : diffs) {
    out += StringPrintf("@@ q%zu @@\n", d.index + 1);
    out += "- " + d.original_sql + "\n";
    out += "+ " + d.repaired_sql + "\n";
    for (const ParamChange& p : d.params) {
      double delta = p.after - p.before;
      out += "    " + p.where + ": " + FormatNumber(p.before) + " -> " +
             FormatNumber(p.after) +
             StringPrintf(" (%s%s)\n", delta >= 0 ? "+" : "",
                          FormatNumber(delta).c_str());
    }
  }
  return out;
}

std::string FormatLogDiff(const relational::QueryLog& original,
                          const relational::QueryLog& repaired,
                          const relational::Schema& schema) {
  return FormatLogDiff(DiffLogs(original, repaired, schema));
}

}  // namespace sql
}  // namespace qfix
