#include "cache/snapshot.h"

#include <atomic>

#include "common/logging.h"
#include "relational/executor.h"

namespace qfix {
namespace cache {

uint64_t NextSnapshotVersion() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Snapshot MakeSnapshot(relational::QueryLog log, relational::Database d0,
                      relational::Database dirty, std::string name) {
  auto ds = std::make_shared<Dataset>();
  ds->name = std::move(name);
  ds->version = NextSnapshotVersion();
  ds->root = ds->version;
  ds->d0_state =
      std::make_shared<const relational::Database>(std::move(d0));
  ds->log = std::move(log);
  ds->dirty = std::move(dirty);
  return Snapshot(std::move(ds));
}

Snapshot MakeSnapshot(relational::QueryLog log, relational::Database d0,
                      std::string name) {
  relational::Database dirty = relational::ExecuteLog(log, d0);
  return MakeSnapshot(std::move(log), std::move(d0), std::move(dirty),
                      std::move(name));
}

Snapshot AppendSnapshot(const Snapshot& base, relational::QueryLog tail) {
  QFIX_CHECK(static_cast<bool>(base)) << "append on an empty snapshot";
  const Dataset& old = *base;
  auto ds = std::make_shared<Dataset>();
  ds->name = old.name;
  ds->version = NextSnapshotVersion();
  ds->root = old.root;
  ds->d0_state = old.d0_state;  // structural sharing, no copy
  ds->chunks = old.chunks;      // shared_ptr copies, no chunk is rebuilt
  if (old.tail_begin() < old.log.size()) {
    ds->chunks.push_back(ingest::SealChunk(
        old.log, old.tail_begin(), old.log.size(),
        old.d0().schema().num_attrs(), old.tail_slots(), old.chunk_sig()));
  }
  ds->log = old.log;
  for (relational::Query& q : tail) ds->log.push_back(std::move(q));
  // The only per-append tuple work: clone the base's dirty state and
  // replay just the appended queries onto it.
  ds->dirty = old.dirty.Clone();
  for (size_t qi = old.log.size(); qi < ds->log.size(); ++qi) {
    relational::ApplyQuery(ds->log[qi], ds->dirty);
  }
  return Snapshot(std::move(ds));
}

uint64_t WindowSignature(const Dataset& dataset,
                         const provenance::ComplaintSet& complaints) {
  const AttrSet attrs = complaints.ComplaintAttributes(dataset.dirty);
  std::vector<int64_t> tids;
  tids.reserve(complaints.size());
  for (const provenance::Complaint& c : complaints.complaints()) {
    tids.push_back(c.tid);
  }
  // Tail first: if the mutable tail can touch the complaints, the
  // window covers the whole log of THIS version — salt with the
  // process-unique version so no other version ever shares the key.
  if (ingest::QueriesAffect(dataset.log, dataset.tail_begin(),
                            dataset.log.size(), dataset.tail_slots(), attrs,
                            tids)) {
    return ingest::MixHash(dataset.chunk_sig(), dataset.version);
  }
  // Otherwise the window ends at the last affecting sealed chunk; its
  // prefix signature covers everything before it by construction.
  for (size_t i = dataset.chunks.size(); i-- > 0;) {
    if (ingest::ChunkAffects(*dataset.chunks[i], attrs, tids)) {
      return dataset.chunks[i]->prefix_sig;
    }
  }
  return ingest::EmptyPrefixSig(dataset.root);
}

}  // namespace cache
}  // namespace qfix
