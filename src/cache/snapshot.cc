#include "cache/snapshot.h"

#include <atomic>

#include "relational/executor.h"

namespace qfix {
namespace cache {

uint64_t NextSnapshotVersion() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Snapshot MakeSnapshot(relational::QueryLog log, relational::Database d0,
                      relational::Database dirty, std::string name) {
  auto ds = std::make_shared<Dataset>();
  ds->name = std::move(name);
  ds->version = NextSnapshotVersion();
  ds->d0 = std::move(d0);
  ds->log = std::move(log);
  ds->dirty = std::move(dirty);
  return Snapshot(std::move(ds));
}

Snapshot MakeSnapshot(relational::QueryLog log, relational::Database d0,
                      std::string name) {
  relational::Database dirty = relational::ExecuteLog(log, d0);
  return MakeSnapshot(std::move(log), std::move(d0), std::move(dirty),
                      std::move(name));
}

}  // namespace cache
}  // namespace qfix
