// Versioned zero-copy diagnosis snapshots with chunked, appendable logs.
//
// A Dataset is the paper's system-model triple — trusted checkpoint D0,
// the executed query log Q, and the replayed dirty state D_n — frozen
// behind shared_ptr<const Dataset> so the whole serving stack (registry,
// batch diagnoser, engine) shares ONE materialization per registration
// instead of deep-copying it into every request. Every Dataset carries a
// process-unique, monotonically increasing version id minted at
// construction: (name, version) is the identity the report cache keys
// on, and a re-registered name gets a fresh version, which is what makes
// stale cache entries unreachable without any coordination.
//
// Incremental ingest (src/ingest): a dataset's log is an ordered list
// of frozen chunks plus a mutable tail (the queries since the last
// seal). AppendSnapshot() seals the tail into a chunk and mints a
// *derived* version that structurally shares the D0 checkpoint and
// every prior chunk with its base — the only per-append materialization
// is the new dirty state (one Clone of the base's dirty plus a replay
// of just the appended queries) and a flattened copy of the query list.
// No Database is ever implicitly copied (Database::CopyCount() stays
// flat across appends). `root` names the originating registration: all
// versions derived from it share the root, which anchors chunk prefix
// signatures so lineages of different registrations never collide.
#ifndef QFIX_CACHE_SNAPSHOT_H_
#define QFIX_CACHE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ingest/chunk.h"
#include "provenance/complaint.h"
#include "relational/database.h"
#include "relational/query.h"

namespace qfix {
namespace cache {

/// Mints the next process-wide snapshot version. Thread-safe; never
/// returns 0 (0 means "no version" in default-constructed state).
uint64_t NextSnapshotVersion();

/// One immutable diagnosis snapshot. Nothing mutates a Dataset after
/// publication; concurrent readers share it by reference counting.
struct Dataset {
  std::string name;
  /// Process-unique registration id (see NextSnapshotVersion()).
  uint64_t version = 0;
  /// Version of the registration this dataset descends from: equal to
  /// `version` for a fresh registration, inherited across appends.
  uint64_t root = 0;
  /// Trusted checkpoint D0, shared (never copied) across every version
  /// derived from one registration.
  std::shared_ptr<const relational::Database> d0_state =
      std::make_shared<relational::Database>();
  relational::QueryLog log;
  /// The observed final state, replay of `log` on `d0` — what
  /// complaints are filed against.
  relational::Database dirty;
  /// Sealed immutable chunks covering log[0, tail_begin()), oldest
  /// first; the remaining queries are the mutable tail. Shared by
  /// reference with every version extending this one.
  std::vector<ingest::LogChunkPtr> chunks;

  const relational::Database& d0() const { return *d0_state; }
  /// First log index not covered by a sealed chunk.
  size_t tail_begin() const {
    return chunks.empty() ? 0 : chunks.back()->end;
  }
  /// Database slots entering the tail (D0 slots plus sealed INSERTs).
  size_t tail_slots() const {
    return chunks.empty() ? d0_state->NumSlots() : chunks.back()->slots_after;
  }
  /// Signature of the full sealed-chunk prefix (the empty-prefix
  /// signature when nothing is sealed yet).
  uint64_t chunk_sig() const {
    return chunks.empty() ? ingest::EmptyPrefixSig(root)
                          : chunks.back()->prefix_sig;
  }
};

/// A cheap, copyable handle on an immutable Dataset. Copying a Snapshot
/// bumps a refcount; it never copies tuples. A default-constructed
/// Snapshot is empty (boolean false).
class Snapshot {
 public:
  Snapshot() = default;
  explicit Snapshot(std::shared_ptr<const Dataset> dataset)
      : dataset_(std::move(dataset)) {}

  explicit operator bool() const { return dataset_ != nullptr; }
  const Dataset& operator*() const { return *dataset_; }
  const Dataset* operator->() const { return dataset_.get(); }
  const std::shared_ptr<const Dataset>& dataset() const { return dataset_; }

  const std::string& name() const { return dataset_->name; }
  uint64_t version() const { return dataset_ == nullptr ? 0
                                                        : dataset_->version; }

 private:
  std::shared_ptr<const Dataset> dataset_;
};

/// Builds a snapshot from explicit states, minting a fresh version.
/// Inputs are moved, not copied.
Snapshot MakeSnapshot(relational::QueryLog log, relational::Database d0,
                      relational::Database dirty, std::string name = "");

/// Convenience overload that derives the dirty state by replaying `log`
/// on `d0`.
Snapshot MakeSnapshot(relational::QueryLog log, relational::Database d0,
                      std::string name = "");

/// Derives a new version of `base` whose log is extended by `tail`:
/// seals the base's mutable tail into a chunk (when non-empty), shares
/// D0 and every prior chunk structurally, and replays only the appended
/// queries onto a clone of the base's dirty state. O(N_D + |tail|)
/// materialization regardless of total log length.
Snapshot AppendSnapshot(const Snapshot& base, relational::QueryLog tail);

/// The chunk-prefix signature of the log window `complaints` can
/// observe: the prefix ending at the last sealed chunk whose writes
/// (UPDATE SET targets, DELETE liveness, INSERT slot ranges) intersect
/// the complaints' attributes or tuples. When the mutable tail itself
/// can affect the complaints the signature is salted with the dataset
/// version (never shared across versions); when nothing affects them it
/// is the empty-prefix signature. Report-cache keys built from this
/// survive appends that cannot change the report: a query outside the
/// window neither corrupted the complained-about cells (its writes are
/// disjoint) nor can a parameter repair make it do so (repairs change
/// constants, never the set of written attributes).
///
/// Caveat: a surviving hit re-renders the report of the version the
/// window was first diagnosed on; its query indexes refer to the shared
/// log prefix, which appends never change.
uint64_t WindowSignature(const Dataset& dataset,
                         const provenance::ComplaintSet& complaints);

}  // namespace cache
}  // namespace qfix

#endif  // QFIX_CACHE_SNAPSHOT_H_
