// Versioned zero-copy diagnosis snapshots.
//
// A Dataset is the paper's system-model triple — trusted checkpoint D0,
// the executed query log Q, and the replayed dirty state D_n — frozen
// behind shared_ptr<const Dataset> so the whole serving stack (registry,
// batch diagnoser, engine) shares ONE materialization per registration
// instead of deep-copying it into every request. Every Dataset carries a
// process-unique, monotonically increasing version id minted at
// construction: (name, version) is the identity the report cache keys
// on, and a re-registered name gets a fresh version, which is what makes
// stale cache entries unreachable without any coordination.
#ifndef QFIX_CACHE_SNAPSHOT_H_
#define QFIX_CACHE_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "relational/database.h"
#include "relational/query.h"

namespace qfix {
namespace cache {

/// Mints the next process-wide snapshot version. Thread-safe; never
/// returns 0 (0 means "no version" in default-constructed state).
uint64_t NextSnapshotVersion();

/// One immutable diagnosis snapshot. Nothing mutates a Dataset after
/// publication; concurrent readers share it by reference counting.
struct Dataset {
  std::string name;
  /// Process-unique registration id (see NextSnapshotVersion()).
  uint64_t version = 0;
  relational::Database d0;
  relational::QueryLog log;
  /// The observed final state, replay of `log` on `d0` — what
  /// complaints are filed against.
  relational::Database dirty;
};

/// A cheap, copyable handle on an immutable Dataset. Copying a Snapshot
/// bumps a refcount; it never copies tuples. A default-constructed
/// Snapshot is empty (boolean false).
class Snapshot {
 public:
  Snapshot() = default;
  explicit Snapshot(std::shared_ptr<const Dataset> dataset)
      : dataset_(std::move(dataset)) {}

  explicit operator bool() const { return dataset_ != nullptr; }
  const Dataset& operator*() const { return *dataset_; }
  const Dataset* operator->() const { return dataset_.get(); }
  const std::shared_ptr<const Dataset>& dataset() const { return dataset_; }

  const std::string& name() const { return dataset_->name; }
  uint64_t version() const { return dataset_ == nullptr ? 0
                                                        : dataset_->version; }

 private:
  std::shared_ptr<const Dataset> dataset_;
};

/// Builds a snapshot from explicit states, minting a fresh version.
/// Inputs are moved, not copied.
Snapshot MakeSnapshot(relational::QueryLog log, relational::Database d0,
                      relational::Database dirty, std::string name = "");

/// Convenience overload that derives the dirty state by replaying `log`
/// on `d0`.
Snapshot MakeSnapshot(relational::QueryLog log, relational::Database d0,
                      std::string name = "");

}  // namespace cache
}  // namespace qfix

#endif  // QFIX_CACHE_SNAPSHOT_H_
