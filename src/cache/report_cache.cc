#include "cache/report_cache.h"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace qfix {
namespace cache {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvBytes(uint64_t seed, const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    seed ^= p[i];
    seed *= kFnvPrime;
  }
  return seed;
}

/// Accounting overhead per entry beyond the report bytes: key strings,
/// map node, LRU node, control block. An estimate — the budget is a
/// sizing knob, not an allocator contract.
constexpr size_t kEntryOverheadBytes = 160;

/// How often a blocked FindOrLead() wakes to poll its cancel token even
/// if the leader has not settled.
constexpr std::chrono::milliseconds kWaitPoll(50);

}  // namespace

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return FnvBytes(seed ^ kFnvOffset, &value, sizeof(value));
}

uint64_t HashComplaints(const provenance::ComplaintSet& complaints) {
  // ComplaintSet keeps complaints sorted by tid with at most one per
  // tuple, so iterating is already canonical.
  uint64_t h = kFnvOffset;
  for (const provenance::Complaint& c : complaints.complaints()) {
    h = FnvBytes(h, &c.tid, sizeof(c.tid));
    unsigned char alive = c.target_alive ? 1 : 0;
    h = FnvBytes(h, &alive, sizeof(alive));
    // Hash exact value bits: two sets are "the same request" only if
    // replaying them would target bit-identical states.
    for (double v : c.target_values) {
      uint64_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      h = FnvBytes(h, &bits, sizeof(bits));
    }
  }
  return h;
}

size_t ReportCache::KeyHash::operator()(const CacheKey& key) const {
  uint64_t h = FnvBytes(kFnvOffset, key.dataset.data(), key.dataset.size());
  h = HashCombine(h, key.version);
  h = HashCombine(h, key.request_hash);
  return static_cast<size_t>(h);
}

std::string_view CacheTenantOf(std::string_view dataset_name) {
  size_t slash = dataset_name.find('/');
  return slash == std::string_view::npos ? dataset_name
                                         : dataset_name.substr(0, slash);
}

ReportCache::ReportCache(size_t max_bytes, size_t num_shards,
                         double max_tenant_fraction) {
  max_bytes_ = max_bytes;
  num_shards = std::max<size_t>(num_shards, 1);
  shard_budget_ = std::max<size_t>(max_bytes / num_shards, 1);
  if (max_tenant_fraction <= 0.0 || max_tenant_fraction > 1.0) {
    max_tenant_fraction = 1.0;
  }
  tenant_budget_ = std::max<size_t>(
      static_cast<size_t>(static_cast<double>(shard_budget_) *
                          max_tenant_fraction),
      1);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ReportCache::Shard& ReportCache::ShardFor(const CacheKey& key) {
  return *shards_[KeyHash()(key) % shards_.size()];
}

void ReportCache::RemoveSettledLocked(
    Shard& shard,
    std::unordered_map<CacheKey, Entry, KeyHash>::iterator it) {
  shard.bytes -= it->second.bytes;
  auto tb = shard.tenant_bytes.find(
      std::string(CacheTenantOf(it->first.dataset)));
  if (tb != shard.tenant_bytes.end()) {
    tb->second -= std::min(tb->second, it->second.bytes);
    if (tb->second == 0) shard.tenant_bytes.erase(tb);
  }
  shard.lru.erase(it->second.lru_it);
  shard.map.erase(it);
}

void ReportCache::EvictOverBudget(Shard& shard) {
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    auto it = shard.map.find(shard.lru.back());
    if (it != shard.map.end()) {
      RemoveSettledLocked(shard, it);
      ++shard.evictions;
    } else {
      shard.lru.pop_back();
    }
  }
}

void ReportCache::EvictTenantOverBudget(Shard& shard,
                                        std::string_view tenant,
                                        const CacheKey& keep) {
  auto tb = shard.tenant_bytes.find(std::string(tenant));
  if (tb == shard.tenant_bytes.end() || tb->second <= tenant_budget_) return;
  // Walk this tenant's entries from the LRU tail. The just-published
  // entry is spared: a single over-budget report may still be cached
  // (the global budget bounds it), it just evicts its tenant's older
  // entries first.
  for (auto lit = shard.lru.rbegin(); lit != shard.lru.rend();) {
    auto tb_now = shard.tenant_bytes.find(std::string(tenant));
    if (tb_now == shard.tenant_bytes.end() ||
        tb_now->second <= tenant_budget_) {
      return;
    }
    const CacheKey& candidate = *lit;
    ++lit;
    if (CacheTenantOf(candidate.dataset) != tenant || candidate == keep) {
      continue;
    }
    auto it = shard.map.find(candidate);
    if (it != shard.map.end()) {
      // Erasing invalidates `lit` if it points at the erased node;
      // restart from the tail (eviction is rare and the tail is where
      // victims live).
      RemoveSettledLocked(shard, it);
      ++shard.evictions;
      lit = shard.lru.rbegin();
    }
  }
}

ReportCache::Outcome ReportCache::FindOrLead(
    const CacheKey& key, const exec::CancellationToken& cancel) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  bool waited = false;
  while (true) {
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      // Cold miss: take leadership with a pending (valueless)
      // placeholder.
      shard.map.emplace(key, Entry());
      ++shard.misses;
      Outcome out;
      out.lead = true;
      return out;
    }
    if (it->second.value != nullptr) {
      // Hit: refresh recency.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      ++shard.hits;
      if (waited) ++shard.coalesced;
      Outcome out;
      out.value = it->second.value;
      out.coalesced = waited;
      return out;
    }
    // A leader is in flight; wait for it to settle, polling the cancel
    // token so shutdown (or a crashed leader's waiters) cannot hang.
    if (cancel.cancelled()) {
      ++shard.misses;
      return Outcome();
    }
    waited = true;
    shard.cv.wait_for(lock, kWaitPoll);
  }
}

std::shared_ptr<const CachedReport> ReportCache::Peek(const CacheKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.value == nullptr) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  ++shard.hits;
  return it->second.value;
}

void ReportCache::Publish(const CacheKey& key, CachedReport report) {
  Shard& shard = ShardFor(key);
  size_t bytes = key.dataset.size() + report.report_json.size() +
                 kEntryOverheadBytes;
  auto value = std::make_shared<const CachedReport>(std::move(report));
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.emplace(key, Entry());
    Entry& entry = it->second;
    std::string tenant(CacheTenantOf(key.dataset));
    if (!inserted && entry.value != nullptr) {
      // Replacing a settled entry (uncoordinated insert): drop the old
      // accounting and recency slot first.
      shard.bytes -= entry.bytes;
      auto tb = shard.tenant_bytes.find(tenant);
      if (tb != shard.tenant_bytes.end()) {
        tb->second -= std::min(tb->second, entry.bytes);
      }
      shard.lru.erase(entry.lru_it);
    }
    entry.value = std::move(value);
    entry.bytes = bytes;
    shard.lru.push_front(key);
    entry.lru_it = shard.lru.begin();
    shard.bytes += bytes;
    shard.tenant_bytes[tenant] += bytes;
    ++shard.inserts;
    // Partition first (a hungry tenant churns its own tail), then the
    // global budget.
    EvictTenantOverBudget(shard, tenant, key);
    EvictOverBudget(shard);
  }
  shard.cv.notify_all();
}

void ReportCache::Abandon(const CacheKey& key) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && it->second.value == nullptr) {
      shard.map.erase(it);
    }
  }
  shard.cv.notify_all();
}

void ReportCache::EraseDataset(std::string_view name) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      // Pending entries stay: their leader still owns Publish/Abandon,
      // and their stale-version key can never be queried again anyway.
      if (it->first.dataset == name && it->second.value != nullptr) {
        auto doomed = it++;
        RemoveSettledLocked(shard, doomed);
        ++shard.invalidations;
      } else {
        ++it;
      }
    }
  }
}

void ReportCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (it->second.value != nullptr) {
        shard.lru.erase(it->second.lru_it);
        it = shard.map.erase(it);
        ++shard.invalidations;
      } else {
        ++it;
      }
    }
    shard.bytes = 0;
    shard.tenant_bytes.clear();
  }
}

ReportCache::Stats ReportCache::stats() const {
  Stats out;
  out.capacity_bytes = max_bytes_;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.coalesced += shard.coalesced;
    out.inserts += shard.inserts;
    out.evictions += shard.evictions;
    out.invalidations += shard.invalidations;
    out.bytes += shard.bytes;
    out.entries += shard.lru.size();
  }
  return out;
}

size_t ReportCache::TenantBytes(std::string_view tenant) const {
  size_t out = 0;
  std::string key(tenant);
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.tenant_bytes.find(key);
    if (it != shard.tenant_bytes.end()) out += it->second;
  }
  return out;
}

size_t ReportCache::DatasetBytes(std::string_view name) const {
  size_t out = 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& kv : shard.map) {
      if (kv.first.dataset == name && kv.second.value != nullptr) {
        out += kv.second.bytes;
      }
    }
  }
  return out;
}

}  // namespace cache
}  // namespace qfix
