#include "cache/report_cache.h"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace qfix {
namespace cache {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvBytes(uint64_t seed, const void* data, size_t len) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    seed ^= p[i];
    seed *= kFnvPrime;
  }
  return seed;
}

/// Accounting overhead per entry beyond the report bytes: key strings,
/// map node, LRU node, control block. An estimate — the budget is a
/// sizing knob, not an allocator contract.
constexpr size_t kEntryOverheadBytes = 160;

/// How often a blocked FindOrLead() wakes to poll its cancel token even
/// if the leader has not settled.
constexpr std::chrono::milliseconds kWaitPoll(50);

}  // namespace

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return FnvBytes(seed ^ kFnvOffset, &value, sizeof(value));
}

uint64_t HashComplaints(const provenance::ComplaintSet& complaints) {
  // ComplaintSet keeps complaints sorted by tid with at most one per
  // tuple, so iterating is already canonical.
  uint64_t h = kFnvOffset;
  for (const provenance::Complaint& c : complaints.complaints()) {
    h = FnvBytes(h, &c.tid, sizeof(c.tid));
    unsigned char alive = c.target_alive ? 1 : 0;
    h = FnvBytes(h, &alive, sizeof(alive));
    // Hash exact value bits: two sets are "the same request" only if
    // replaying them would target bit-identical states.
    for (double v : c.target_values) {
      uint64_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      h = FnvBytes(h, &bits, sizeof(bits));
    }
  }
  return h;
}

size_t ReportCache::KeyHash::operator()(const CacheKey& key) const {
  uint64_t h = FnvBytes(kFnvOffset, key.dataset.data(), key.dataset.size());
  h = HashCombine(h, key.version);
  h = HashCombine(h, key.request_hash);
  return static_cast<size_t>(h);
}

ReportCache::ReportCache(size_t max_bytes, size_t num_shards)
    : max_bytes_(max_bytes) {
  num_shards = std::max<size_t>(num_shards, 1);
  shard_budget_ = std::max<size_t>(max_bytes / num_shards, 1);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ReportCache::Shard& ReportCache::ShardFor(const CacheKey& key) {
  return *shards_[KeyHash()(key) % shards_.size()];
}

void ReportCache::EvictOverBudget(Shard& shard) {
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    const CacheKey& victim = shard.lru.back();
    auto it = shard.map.find(victim);
    if (it != shard.map.end()) {
      shard.bytes -= it->second.bytes;
      shard.map.erase(it);
      ++shard.evictions;
    }
    shard.lru.pop_back();
  }
}

ReportCache::Outcome ReportCache::FindOrLead(
    const CacheKey& key, const exec::CancellationToken& cancel) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::mutex> lock(shard.mu);
  bool waited = false;
  while (true) {
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      // Cold miss: take leadership with a pending (valueless)
      // placeholder.
      shard.map.emplace(key, Entry());
      ++shard.misses;
      Outcome out;
      out.lead = true;
      return out;
    }
    if (it->second.value != nullptr) {
      // Hit: refresh recency.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
      ++shard.hits;
      if (waited) ++shard.coalesced;
      Outcome out;
      out.value = it->second.value;
      out.coalesced = waited;
      return out;
    }
    // A leader is in flight; wait for it to settle, polling the cancel
    // token so shutdown (or a crashed leader's waiters) cannot hang.
    if (cancel.cancelled()) {
      ++shard.misses;
      return Outcome();
    }
    waited = true;
    shard.cv.wait_for(lock, kWaitPoll);
  }
}

std::shared_ptr<const CachedReport> ReportCache::Peek(const CacheKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end() || it->second.value == nullptr) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  ++shard.hits;
  return it->second.value;
}

void ReportCache::Publish(const CacheKey& key, CachedReport report) {
  Shard& shard = ShardFor(key);
  size_t bytes = key.dataset.size() + report.report_json.size() +
                 kEntryOverheadBytes;
  auto value = std::make_shared<const CachedReport>(std::move(report));
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.emplace(key, Entry());
    Entry& entry = it->second;
    if (!inserted && entry.value != nullptr) {
      // Replacing a settled entry (uncoordinated insert): drop the old
      // accounting and recency slot first.
      shard.bytes -= entry.bytes;
      shard.lru.erase(entry.lru_it);
    }
    entry.value = std::move(value);
    entry.bytes = bytes;
    shard.lru.push_front(key);
    entry.lru_it = shard.lru.begin();
    shard.bytes += bytes;
    ++shard.inserts;
    EvictOverBudget(shard);
  }
  shard.cv.notify_all();
}

void ReportCache::Abandon(const CacheKey& key) {
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && it->second.value == nullptr) {
      shard.map.erase(it);
    }
  }
  shard.cv.notify_all();
}

void ReportCache::EraseDataset(std::string_view name) {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      // Pending entries stay: their leader still owns Publish/Abandon,
      // and their stale-version key can never be queried again anyway.
      if (it->first.dataset == name && it->second.value != nullptr) {
        shard.bytes -= it->second.bytes;
        shard.lru.erase(it->second.lru_it);
        it = shard.map.erase(it);
        ++shard.invalidations;
      } else {
        ++it;
      }
    }
  }
}

void ReportCache::Clear() {
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      if (it->second.value != nullptr) {
        shard.lru.erase(it->second.lru_it);
        it = shard.map.erase(it);
        ++shard.invalidations;
      } else {
        ++it;
      }
    }
    shard.bytes = 0;
  }
}

ReportCache::Stats ReportCache::stats() const {
  Stats out;
  out.capacity_bytes = max_bytes_;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.coalesced += shard.coalesced;
    out.inserts += shard.inserts;
    out.evictions += shard.evictions;
    out.invalidations += shard.invalidations;
    out.bytes += shard.bytes;
    out.entries += shard.lru.size();
  }
  return out;
}

}  // namespace cache
}  // namespace qfix
