// Memoized diagnosis reports: a sharded, thread-safe LRU keyed by
// (dataset name, snapshot version, canonical request hash).
//
// Production complaint traffic is repetitive — the same dataset version
// gets diagnosed against overlapping complaint sets — while each solve
// builds and searches a MILP. The cache amortizes that: a hit returns
// the byte-identical report of the original solve (plus an optional
// type-erased payload, e.g. the qfixcore::Repair, for library callers)
// without touching the solver.
//
// Singleflight: concurrent identical misses coalesce into one solve.
// The first caller of FindOrLead() on an absent key becomes the leader
// (Outcome::lead) and MUST later Publish() or Abandon() the key; every
// concurrent caller blocks until the leader settles and then returns
// the published value (Outcome::coalesced) or retries for leadership.
// Waiting polls a cancellation token so shutdown never deadlocks on an
// abandoned leader.
//
// Invalidation is structural: keys carry the snapshot version, so a
// re-registered dataset (fresh version) never matches stale entries.
// EraseDataset() additionally drops every entry of a name eagerly —
// the registry calls it on replacement/eviction so dead bytes do not
// sit in the budget until LRU pressure finds them.
//
// Tenant partitions: entries are attributed to the dataset's namespace
// (CacheTenantOf — the prefix before the first '/'). An optional
// per-tenant fraction caps how much of the byte budget any one tenant
// may hold; past it, that tenant's own LRU tail is evicted first, so a
// cache-hungry tenant churns its own entries instead of flushing
// everyone else's working set.
#ifndef QFIX_CACHE_REPORT_CACHE_H_
#define QFIX_CACHE_REPORT_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "exec/cancellation.h"
#include "provenance/complaint.h"

namespace qfix {
namespace cache {

/// Identity of one memoizable diagnosis request.
struct CacheKey {
  std::string dataset;
  /// Snapshot identity — historically the exact registration version;
  /// the batch diagnoser now fills it with cache::WindowSignature (the
  /// chunk-prefix signature the complaint window can observe) so
  /// reports survive appends that cannot change them. Either way it is
  /// unique per lineage: stale entries are unreachable, not wrong.
  uint64_t version = 0;
  /// Canonical hash of the complaint set plus the request knobs that
  /// change the report (k/basic, denoise, engine options) — see
  /// HashComplaints()/HashCombine().
  uint64_t request_hash = 0;

  bool operator==(const CacheKey& other) const {
    return version == other.version && request_hash == other.request_hash &&
           dataset == other.dataset;
  }
};

/// FNV-1a style mixing of two hashes (order-sensitive).
uint64_t HashCombine(uint64_t seed, uint64_t value);

/// Canonical hash of a complaint set. ComplaintSet is tid-sorted with at
/// most one complaint per tuple, so equal sets hash equal regardless of
/// the order or formatting they arrived in.
uint64_t HashComplaints(const provenance::ComplaintSet& complaints);

/// One cached diagnosis result.
struct CachedReport {
  /// The exact report_json rendering of the original solve; a hit
  /// splices these bytes into the response unchanged.
  std::string report_json;
  /// Optional structured result (type-erased; e.g. a
  /// shared_ptr<const qfixcore::Repair>) so library callers can skip
  /// the solver too, not just the rendering.
  std::shared_ptr<const void> payload;
};

/// The tenant (dataset namespace) a dataset name belongs to: the prefix
/// before the first '/', or the whole name when it has none. Mirrors
/// service::TenantOf without depending on the service layer.
std::string_view CacheTenantOf(std::string_view dataset_name);

class ReportCache {
 public:
  /// `max_bytes` bounds the sum of cached report bytes (plus a small
  /// per-entry overhead estimate) across all shards; the least recently
  /// used entries are evicted beyond it. `num_shards` bounds lock
  /// contention; each shard owns 1/num_shards of the budget.
  /// `max_tenant_fraction` in (0, 1] caps one tenant's slice of each
  /// shard's budget (1.0 = no partitioning).
  explicit ReportCache(size_t max_bytes, size_t num_shards = 8,
                       double max_tenant_fraction = 1.0);

  ReportCache(const ReportCache&) = delete;
  ReportCache& operator=(const ReportCache&) = delete;

  /// Outcome of a lookup (see the singleflight contract above).
  struct Outcome {
    /// The cached report, or nullptr on a miss.
    std::shared_ptr<const CachedReport> value;
    /// Miss with leadership: the caller must Publish() or Abandon().
    bool lead = false;
    /// Hit served by waiting on a concurrent leader's solve.
    bool coalesced = false;
  };

  /// Looks `key` up; on a cold miss the caller becomes the leader. If a
  /// leader is already in flight, blocks until it settles (polling
  /// `cancel`); a cancelled wait returns a plain miss with lead ==
  /// false — the caller should compute without publishing.
  Outcome FindOrLead(const CacheKey& key,
                     const exec::CancellationToken& cancel =
                         exec::CancellationToken());

  /// Non-blocking, no-leadership probe. Returns the value or nullptr.
  std::shared_ptr<const CachedReport> Peek(const CacheKey& key);

  /// Publishes the leader's result and wakes every waiter. Also valid
  /// without leadership (an uncoordinated insert); last write wins.
  void Publish(const CacheKey& key, CachedReport report);

  /// Releases leadership without a value (failed solve, shed request).
  /// Waiters wake and retry for leadership.
  void Abandon(const CacheKey& key);

  /// Drops every settled entry of `name`, any version. Called by the
  /// registry when a name is replaced or evicted.
  void EraseDataset(std::string_view name);

  /// Drops every settled entry.
  void Clear();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Hits served by waiting on a concurrent identical solve.
    uint64_t coalesced = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    /// Entries dropped by EraseDataset()/Clear().
    uint64_t invalidations = 0;
    size_t bytes = 0;
    size_t entries = 0;
    size_t capacity_bytes = 0;
  };
  Stats stats() const;

  /// Settled bytes currently held by `tenant` across all shards.
  size_t TenantBytes(std::string_view tenant) const;

  /// Settled bytes currently held by entries of dataset `name` (any
  /// version) across all shards. O(entries); a stats-path gauge, not a
  /// hot-path accessor.
  size_t DatasetBytes(std::string_view name) const;

 private:
  struct Entry {
    /// nullptr while pending (a leader's solve is in flight).
    std::shared_ptr<const CachedReport> value;
    size_t bytes = 0;
    /// Position in the shard's LRU list (valid only when settled).
    std::list<CacheKey>::iterator lru_it;
  };

  struct KeyHash {
    size_t operator()(const CacheKey& key) const;
  };

  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<CacheKey, Entry, KeyHash> map;
    /// Most recent at the front; only settled entries live here.
    std::list<CacheKey> lru;
    /// Settled bytes per tenant (dataset namespace) in this shard.
    std::unordered_map<std::string, size_t> tenant_bytes;
    size_t bytes = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t coalesced = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
  };

  Shard& ShardFor(const CacheKey& key);
  /// Evicts from the LRU tail until the shard fits its budget. Caller
  /// holds the shard lock.
  void EvictOverBudget(Shard& shard);
  /// Evicts `tenant`'s own LRU tail until it fits the tenant budget,
  /// sparing `keep` (the entry just published). Caller holds the lock.
  void EvictTenantOverBudget(Shard& shard, std::string_view tenant,
                             const CacheKey& keep);
  /// Removes one settled entry (map erase + LRU unlink + byte
  /// accounting, global and tenant). Caller holds the shard lock.
  void RemoveSettledLocked(
      Shard& shard, std::unordered_map<CacheKey, Entry, KeyHash>::iterator it);

  size_t max_bytes_;
  size_t shard_budget_;
  size_t tenant_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace cache
}  // namespace qfix

#endif  // QFIX_CACHE_REPORT_CACHE_H_
