// Cooperative cancellation for the execution subsystem.
//
// A CancellationSource owns the cancel flag; CancellationTokens are
// cheap copyable views that long-running tasks poll at convenient
// checkpoints (a branch & bound node boundary, a batch item boundary).
// Cancellation is advisory: a task that never polls simply runs to
// completion. The flag only ever transitions false -> true.
#ifndef QFIX_EXEC_CANCELLATION_H_
#define QFIX_EXEC_CANCELLATION_H_

#include <atomic>
#include <memory>

namespace qfix {
namespace exec {

class CancellationSource;

/// A read-only view on a cancel flag. Default-constructed tokens are
/// never cancelled (the "no cancellation requested" case).
class CancellationToken {
 public:
  CancellationToken() = default;

  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Owns the flag and hands out tokens. Tokens keep the flag alive, so a
/// source may be destroyed while tasks still hold tokens.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_release); }

  bool cancelled() const { return flag_->load(std::memory_order_acquire); }

  CancellationToken token() const { return CancellationToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace exec
}  // namespace qfix

#endif  // QFIX_EXEC_CANCELLATION_H_
