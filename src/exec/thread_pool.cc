#include "exec/thread_pool.h"

#include <chrono>
#include <utility>

namespace qfix {
namespace exec {

namespace {

// Which pool (and worker slot) the current thread belongs to, so
// Submit() from inside a task targets the submitting worker's own deque.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  if (num_workers <= 0) return;  // deterministic inline mode
  queues_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    stop_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::DefaultParallelism() {
  unsigned int n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::Submit(Task task) {
  if (workers_.empty()) {
    task();  // deterministic mode: submission order == execution order
    return;
  }
  int self = tls_pool == this ? tls_worker_index : -1;
  if (self >= 0) {
    std::lock_guard<std::mutex> lock(queues_[self]->mu);
    queues_[self]->tasks.push_back(std::move(task));
  } else {
    std::lock_guard<std::mutex> lock(injector_mu_);
    injector_.push_back(std::move(task));
  }
  {
    std::lock_guard<std::mutex> lock(sleep_mu_);
    ++pending_signals_;
  }
  sleep_cv_.notify_one();
}

ThreadPool::Task ThreadPool::FindTask(int self) {
  const int n = static_cast<int>(queues_.size());
  if (self >= 0) {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      Task t = std::move(own.tasks.back());
      own.tasks.pop_back();
      return t;
    }
  }
  {
    std::lock_guard<std::mutex> lock(injector_mu_);
    if (!injector_.empty()) {
      Task t = std::move(injector_.front());
      injector_.pop_front();
      return t;
    }
  }
  // Steal the oldest task from the first victim that has one; starting
  // at self+1 spreads thieves across victims instead of all hammering
  // worker 0.
  for (int k = 1; k <= n; ++k) {
    int victim = self >= 0 ? (self + k) % n : k - 1;
    if (victim == self) continue;
    WorkerQueue& q = *queues_[victim];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      Task t = std::move(q.tasks.front());
      q.tasks.pop_front();
      return t;
    }
  }
  return Task();
}

bool ThreadPool::TryRunOneTask() {
  if (workers_.empty()) return false;  // deterministic mode has no queue
  int self = tls_pool == this ? tls_worker_index : -1;
  Task t = FindTask(self);
  if (!t) return false;
  t();
  return true;
}

void ThreadPool::WorkerLoop(int index) {
  tls_pool = this;
  tls_worker_index = index;
  for (;;) {
    Task t = FindTask(index);
    if (t) {
      t();
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    if (pending_signals_ > 0) {
      --pending_signals_;
      continue;  // a Submit raced with our scan; look again
    }
    if (stop_) break;
    // Timed wait as a belt-and-braces backstop: correctness only needs
    // the pending_signals_ protocol, the timeout bounds the cost of any
    // future protocol slip to a periodic re-scan.
    sleep_cv_.wait_for(lock, std::chrono::milliseconds(50));
  }
  tls_pool = nullptr;
  tls_worker_index = -1;
}

}  // namespace exec
}  // namespace qfix
