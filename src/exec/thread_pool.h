// Fixed-size thread pool with per-worker work-stealing deques.
//
// Each worker owns a deque: it pushes and pops work at the back (LIFO,
// cache-friendly for divide-and-conquer search trees) while idle workers
// steal from the front (FIFO, so thieves take the oldest — typically
// largest — subproblems). Tasks submitted from outside the pool land in
// a shared injection queue that workers drain before stealing.
//
// A pool constructed with `num_workers <= 0` runs in *deterministic
// mode*: no threads are spawned and Submit() executes the task inline on
// the calling thread, so execution order equals submission order and
// test runs are exactly reproducible. Callers pick the mode once and the
// rest of their code is oblivious (this is how `--jobs 1` and unit tests
// exercise the same code paths as the parallel build).
#ifndef QFIX_EXEC_THREAD_POOL_H_
#define QFIX_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qfix {
namespace exec {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `num_workers` threads; <= 0 selects deterministic inline
  /// mode (no threads at all).
  explicit ThreadPool(int num_workers);

  /// Drains every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads owned by the pool (0 in deterministic mode).
  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// True when Submit() runs tasks inline on the calling thread.
  bool deterministic() const { return workers_.empty(); }

  /// Schedules `task`. From a worker thread the task goes to that
  /// worker's own deque (stealable by the others); from any other thread
  /// it goes to the shared injection queue. In deterministic mode the
  /// task runs before Submit() returns.
  void Submit(Task task);

  /// Runs one queued task on the calling thread if any is immediately
  /// available. Returns false when every queue was empty. Lets a thread
  /// blocked in TaskGroup::Wait() help instead of idling (and makes
  /// nested Wait() on a worker thread deadlock-free).
  bool TryRunOneTask();

  /// A sane worker count for this machine (hardware_concurrency, at
  /// least 1).
  static int DefaultParallelism();

 private:
  /// One worker's deque. A plain mutex per deque keeps the stealing
  /// protocol obviously correct (and TSan-clean); the lock is held only
  /// for a push/pop, never while a task runs.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void WorkerLoop(int index);
  /// Pops from `self`'s back, then the injection queue, then steals from
  /// the front of the other workers' deques. Returns an empty function
  /// when nothing is runnable.
  Task FindTask(int self);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex injector_mu_;
  std::deque<Task> injector_;

  // Sleep/wake: Submit() leaves a signal so a worker that raced past the
  // queues re-scans instead of sleeping through the notification.
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  int pending_signals_ = 0;
  bool stop_ = false;
};

}  // namespace exec
}  // namespace qfix

#endif  // QFIX_EXEC_THREAD_POOL_H_
