#include "exec/task_group.h"

#include <chrono>
#include <utility>

namespace qfix {
namespace exec {

TaskGroup::TaskGroup(ThreadPool* pool, CancellationToken parent)
    : pool_(pool), parent_(std::move(parent)) {}

TaskGroup::~TaskGroup() {
  try {
    Wait();
  } catch (...) {
    // The caller chose not to Wait(); the error has nowhere to go.
  }
}

void TaskGroup::Spawn(std::function<void()> fn) {
  // Lazily propagate an external cancellation into the group token so
  // tasks polling token() observe it.
  if (parent_.cancelled()) cancel_.Cancel();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)]() mutable {
    if (!cancelled()) {
      try {
        fn();
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          if (!first_error_) first_error_ = std::current_exception();
        }
        cancel_.Cancel();
      }
    }
    OnTaskDone();
  });
}

void TaskGroup::OnTaskDone() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--pending_ == 0) done_cv_.notify_all();
}

void TaskGroup::Wait() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (pending_ == 0) break;
    }
    // Help run queued tasks (ours or anyone's) rather than idling; fall
    // back to a timed sleep when every queue is empty but our tasks are
    // still in flight on other workers.
    if (!pool_->TryRunOneTask()) {
      std::unique_lock<std::mutex> lock(mu_);
      if (pending_ == 0) break;
      done_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (first_error_) std::rethrow_exception(first_error_);
}

}  // namespace exec
}  // namespace qfix
