// TaskGroup: a structured fork/join scope over a ThreadPool.
//
// Spawn() schedules tasks; Wait() blocks until every spawned task (plus
// any tasks they spawned into the same group) has finished, then
// rethrows the first exception any of them raised. A failing task also
// cancels the group, so queued-but-not-started siblings are skipped and
// running ones can bail early via token(). The waiting thread helps run
// pool tasks instead of idling, which also makes nested Wait() on a
// worker thread deadlock-free.
#ifndef QFIX_EXEC_TASK_GROUP_H_
#define QFIX_EXEC_TASK_GROUP_H_

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>

#include "exec/cancellation.h"
#include "exec/thread_pool.h"

namespace qfix {
namespace exec {

class TaskGroup {
 public:
  /// The pool must outlive the group. An external `parent` token lets a
  /// caller cancel many groups at once; the group's own token (token())
  /// additionally fires when a task throws or Cancel() is called.
  explicit TaskGroup(ThreadPool* pool,
                     CancellationToken parent = CancellationToken());

  /// Waits for stragglers (exceptions are swallowed here; call Wait()
  /// yourself to observe them).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Schedules `fn`. May be called from inside a group task to split
  /// work recursively. Tasks scheduled after cancellation are counted
  /// but never run (they complete as no-ops).
  void Spawn(std::function<void()> fn);

  /// Blocks until all spawned tasks completed; rethrows the first task
  /// exception. Safe to call multiple times.
  void Wait();

  /// Requests cancellation of not-yet-started tasks in this group.
  void Cancel() { cancel_.Cancel(); }

  /// True once Cancel() was called, a task threw, or the parent token
  /// fired.
  bool cancelled() const {
    return cancel_.cancelled() || parent_.cancelled();
  }

  /// Token for group tasks to poll. Fires on Cancel() or a task
  /// failure; parent-token cancellation is folded in lazily (observed
  /// at the next Spawn), so poll cancelled() when the parent must be
  /// seen promptly.
  CancellationToken token() const { return cancel_.token(); }

 private:
  void OnTaskDone();

  ThreadPool* pool_;
  CancellationToken parent_;
  CancellationSource cancel_;

  std::mutex mu_;
  std::condition_variable done_cv_;
  int pending_ = 0;
  std::exception_ptr first_error_;
};

}  // namespace exec
}  // namespace qfix

#endif  // QFIX_EXEC_TASK_GROUP_H_
