#include "provenance/impact.h"

namespace qfix {
namespace provenance {

std::vector<AttrSet> ComputeFullImpacts(const relational::QueryLog& log,
                                        size_t num_attrs) {
  const size_t n = log.size();
  std::vector<AttrSet> deps;
  deps.reserve(n);
  for (const relational::Query& q : log) {
    deps.push_back(q.Dependency(num_attrs));
  }
  std::vector<AttrSet> full(n, AttrSet(num_attrs));
  // Back to front: F(q_j) for j > i is final by the time q_i is processed,
  // and the forward scan inside matches Algorithm 2's accumulation.
  for (size_t i = n; i-- > 0;) {
    AttrSet f = log[i].DirectImpact(num_attrs);
    for (size_t j = i + 1; j < n; ++j) {
      if (f.Intersects(deps[j])) f.UnionWith(full[j]);
    }
    full[i] = std::move(f);
  }
  return full;
}

std::vector<size_t> RelevantQueries(const std::vector<AttrSet>& full_impacts,
                                    const AttrSet& complaint_attrs,
                                    bool single_corruption) {
  std::vector<size_t> out;
  for (size_t i = 0; i < full_impacts.size(); ++i) {
    const AttrSet& f = full_impacts[i];
    if (single_corruption) {
      if (f.ContainsAll(complaint_attrs) && !complaint_attrs.Empty()) {
        out.push_back(i);
      }
    } else if (f.Intersects(complaint_attrs)) {
      out.push_back(i);
    }
  }
  return out;
}

AttrSet RelevantAttributes(const relational::QueryLog& log,
                           const std::vector<size_t>& relevant_queries,
                           const AttrSet& complaint_attrs,
                           size_t num_attrs) {
  AttrSet out = complaint_attrs;
  QFIX_CHECK(out.capacity() == num_attrs);
  for (size_t i : relevant_queries) {
    QFIX_CHECK(i < log.size());
    out.UnionWith(log[i].DirectImpact(num_attrs));
    out.UnionWith(log[i].Dependency(num_attrs));
  }
  return out;
}

}  // namespace provenance
}  // namespace qfix
