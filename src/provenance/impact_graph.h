// Read-write dependency graph export (Graphviz DOT).
//
// Query slicing (§5.2) rests on the causal read-write chains between
// queries: q_i feeds q_j when an attribute q_i writes is read by q_j
// later in the log. This module renders those chains — plus each query's
// relevance to a complaint set — as a DOT document, so an administrator
// can *see* why QFix considers or ignores a query. Render with:
//
//   qfix ... --export-graph log.dot && dot -Tsvg log.dot -o log.svg
#ifndef QFIX_PROVENANCE_IMPACT_GRAPH_H_
#define QFIX_PROVENANCE_IMPACT_GRAPH_H_

#include <string>
#include <vector>

#include "common/attr_set.h"
#include "relational/query.h"
#include "relational/schema.h"

namespace qfix {
namespace provenance {

/// One read-write edge: `from` writes an attribute that `to` reads.
struct ImpactEdge {
  size_t from = 0;
  size_t to = 0;
  /// The attributes carrying the dependency.
  std::vector<size_t> attrs;
};

/// All direct read-write edges of the log, in (from, to) order. An edge
/// (i, j) exists when i < j and I(q_i) ∩ P(q_j) is non-empty. Chains of
/// these edges are exactly what Algorithm 2's F(q) closes over.
std::vector<ImpactEdge> ComputeImpactEdges(const relational::QueryLog& log,
                                           size_t num_attrs);

struct ImpactGraphOptions {
  /// Mark queries whose full impact reaches these attributes (complaint
  /// attributes A(C)); empty = no relevance coloring.
  AttrSet complaint_attrs;
  /// Emit each query's SQL as the node label (otherwise "q1", "q2", ...).
  bool sql_labels = true;
  /// Highlight these query indexes (e.g. a repair's changed_queries).
  std::vector<size_t> highlight;
};

/// Renders the log's dependency graph as a DOT document. Queries whose
/// full impact intersects `complaint_attrs` are drawn filled (they are
/// repair candidates, Rel(Q)); highlighted queries get a bold border.
std::string WriteImpactGraph(const relational::QueryLog& log,
                             const relational::Schema& schema,
                             const ImpactGraphOptions& options = {});

}  // namespace provenance
}  // namespace qfix

#endif  // QFIX_PROVENANCE_IMPACT_GRAPH_H_
