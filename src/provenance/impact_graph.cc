#include "provenance/impact_graph.h"

#include <string>

#include "common/strings.h"
#include "provenance/impact.h"

namespace qfix {
namespace provenance {

namespace {

// DOT string literal escaping for SQL labels.
std::string EscapeLabel(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::vector<ImpactEdge> ComputeImpactEdges(const relational::QueryLog& log,
                                           size_t num_attrs) {
  std::vector<AttrSet> writes;
  std::vector<AttrSet> reads;
  writes.reserve(log.size());
  reads.reserve(log.size());
  for (const relational::Query& q : log) {
    writes.push_back(q.DirectImpact(num_attrs));
    reads.push_back(q.Dependency(num_attrs));
  }

  std::vector<ImpactEdge> edges;
  for (size_t i = 0; i < log.size(); ++i) {
    for (size_t j = i + 1; j < log.size(); ++j) {
      AttrSet carried = writes[i].Intersect(reads[j]);
      if (carried.Empty()) continue;
      edges.push_back({i, j, carried.ToVector()});
    }
  }
  return edges;
}

std::string WriteImpactGraph(const relational::QueryLog& log,
                             const relational::Schema& schema,
                             const ImpactGraphOptions& options) {
  size_t num_attrs = schema.num_attrs();
  std::vector<AttrSet> full = ComputeFullImpacts(log, num_attrs);

  std::string out = "digraph qfix_impact {\n";
  out += "  rankdir=TB;\n";
  out += "  node [shape=box, fontname=\"monospace\", fontsize=10];\n";

  for (size_t i = 0; i < log.size(); ++i) {
    std::string label;
    if (options.sql_labels) {
      label = StringPrintf("q%zu: %s", i + 1,
                           EscapeLabel(log[i].ToSql(schema)).c_str());
    } else {
      label = StringPrintf("q%zu", i + 1);
    }
    bool relevant = !options.complaint_attrs.Empty() &&
                    full[i].Intersects(options.complaint_attrs);
    bool highlighted = false;
    for (size_t h : options.highlight) highlighted |= h == i;

    out += StringPrintf("  q%zu [label=\"%s\"", i + 1, label.c_str());
    if (relevant) {
      out += ", style=filled, fillcolor=\"#ffe0b3\"";  // repair candidate
    }
    if (highlighted) {
      out += ", penwidth=2.5, color=\"#cc0000\"";  // diagnosed query
    }
    out += "];\n";
  }

  for (const ImpactEdge& e : ComputeImpactEdges(log, num_attrs)) {
    std::vector<std::string> names;
    names.reserve(e.attrs.size());
    for (size_t a : e.attrs) names.push_back(schema.attr_name(a));
    out += StringPrintf("  q%zu -> q%zu [label=\"%s\"];\n", e.from + 1,
                        e.to + 1, EscapeLabel(Join(names, ",")).c_str());
  }
  out += "}\n";
  return out;
}

}  // namespace provenance
}  // namespace qfix
