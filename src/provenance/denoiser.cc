#include "provenance/denoiser.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace qfix {
namespace provenance {

namespace {

double Median(std::vector<double> values) {
  QFIX_CHECK(!values.empty());
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  std::nth_element(values.begin(), values.begin() + mid - 1,
                   values.begin() + mid);
  return (values[mid - 1] + hi) / 2.0;
}

}  // namespace

DenoiseResult DenoiseComplaints(const ComplaintSet& complaints,
                                const relational::Database& dirty,
                                const DenoiserOptions& options) {
  DenoiseResult result;
  if (complaints.size() < options.min_complaints) {
    result.kept = complaints;
    return result;
  }

  // L1 change magnitude per value complaint; -1 for liveness complaints.
  std::vector<double> magnitudes;
  std::vector<double> all;
  for (const Complaint& c : complaints.complaints()) {
    const relational::Tuple& t = dirty.slot(static_cast<size_t>(c.tid));
    if (!c.target_alive || !t.alive) {
      magnitudes.push_back(-1.0);
      continue;
    }
    double delta = 0.0;
    for (size_t a = 0; a < t.values.size(); ++a) {
      delta += std::fabs(t.values[a] - c.target_values[a]);
    }
    magnitudes.push_back(delta);
    all.push_back(delta);
  }
  if (all.size() < options.min_complaints) {
    result.kept = complaints;
    return result;
  }

  double med = Median(all);
  std::vector<double> deviations;
  deviations.reserve(all.size());
  for (double m : all) deviations.push_back(std::fabs(m - med));
  // 1.4826 scales MAD to the standard deviation under normality; the
  // floor keeps the threshold meaningful when most deltas are identical.
  double mad = std::max(1.4826 * Median(deviations), 1e-9 + 0.01 * med);

  for (size_t i = 0; i < complaints.size(); ++i) {
    const Complaint& c = complaints.complaints()[i];
    if (magnitudes[i] < 0.0) {
      result.kept.Add(c);  // liveness complaints pass through
      continue;
    }
    double score = std::fabs(magnitudes[i] - med) / mad;
    if (score > options.mad_threshold) {
      result.dropped.Add(c);
    } else {
      result.kept.Add(c);
    }
  }
  return result;
}

}  // namespace provenance
}  // namespace qfix
