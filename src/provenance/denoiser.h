// Denoiser: optional screening of suspicious complaints (paper Fig. 1).
//
// The paper treats false-positive complaints (users reporting correct
// values as errors) as out of scope and suggests an outlier-detection
// pre-processing step (§6). This is that optional component: complaints
// whose requested change is wildly inconsistent with the rest of the
// complaint set are flagged and removed before diagnosis. It is off by
// default and deliberately conservative — dropping a *valid* complaint
// only costs recall (tuple slicing generalizes), while keeping a fake
// one can make the repair MILP infeasible.
#ifndef QFIX_PROVENANCE_DENOISER_H_
#define QFIX_PROVENANCE_DENOISER_H_

#include "provenance/complaint.h"
#include "relational/database.h"

namespace qfix {
namespace provenance {

struct DenoiserOptions {
  /// A complaint is dropped when its change magnitude exceeds
  /// median + threshold * MAD of the complaint set's change magnitudes
  /// (robust z-score on the L1 delta between dirty and target values).
  double mad_threshold = 8.0;
  /// Never drop complaints when fewer than this many exist (robust
  /// statistics over tiny sets are meaningless).
  size_t min_complaints = 4;
};

struct DenoiseResult {
  ComplaintSet kept;
  ComplaintSet dropped;
};

/// Screens `complaints` against the dirty state. Liveness complaints are
/// never dropped (no magnitude to compare).
DenoiseResult DenoiseComplaints(const ComplaintSet& complaints,
                                const relational::Database& dirty,
                                const DenoiserOptions& options = {});

}  // namespace provenance
}  // namespace qfix

#endif  // QFIX_PROVENANCE_DENOISER_H_
