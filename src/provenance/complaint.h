// Complaints: reported discrepancies on the final database state.
//
// A complaint c : t -> t* (paper Def. 4) names a tuple of D_n and its
// correct value assignment. Value changes, deletions (t -> ⊥) and
// insertion fixes (⊥ -> t*) are all expressed against the tuple's stable
// slot: target_alive = false encodes "this tuple should not exist", and a
// complaint on a dead slot with target_alive = true encodes "this tuple
// should exist with these values".
#ifndef QFIX_PROVENANCE_COMPLAINT_H_
#define QFIX_PROVENANCE_COMPLAINT_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/attr_set.h"
#include "common/random.h"
#include "relational/database.h"

namespace qfix {
namespace provenance {

/// One complaint: the correct state of tuple `tid` in D_n.
struct Complaint {
  int64_t tid = -1;
  bool target_alive = true;
  std::vector<double> target_values;
};

/// A consistent set of complaints (at most one per tuple), kept sorted by
/// tid. Consistency (no two transformations of the same tuple, §3.1) is
/// enforced on insertion.
class ComplaintSet {
 public:
  ComplaintSet() = default;

  /// Adds a complaint; replaces any previous complaint on the same tid.
  void Add(Complaint c);

  const std::vector<Complaint>& complaints() const { return complaints_; }
  size_t size() const { return complaints_.size(); }
  bool empty() const { return complaints_.empty(); }

  /// The complaint on `tid`, if any.
  const Complaint* Find(int64_t tid) const;

  /// A(C): attributes on which some complaint disagrees with the dirty
  /// state (paper Def. 6). A liveness disagreement marks all attributes.
  AttrSet ComplaintAttributes(const relational::Database& dirty) const;

  /// Applies all complaint transformations to a copy of `dirty`,
  /// producing T_C(D_n) — equal to the true D*_n iff C is complete.
  relational::Database ApplyTo(const relational::Database& dirty) const;

 private:
  std::vector<Complaint> complaints_;  // sorted by tid
};

/// Builds the true (complete) complaint set by tuple-wise comparison of
/// the dirty final state against the true final state (§7.1). Values are
/// compared with tolerance `tol` to absorb floating-point noise.
ComplaintSet DiffStates(const relational::Database& dirty,
                        const relational::Database& truth,
                        double tol = 1e-9);

/// Simulates incomplete reporting: keeps each complaint independently
/// with probability `keep_fraction` (the paper's false-negative sweep,
/// Fig. 8c/8f, removes 0%..75%). Always keeps at least one complaint when
/// the input is non-empty so the repair problem stays posed.
ComplaintSet SampleComplaints(const ComplaintSet& full, double keep_fraction,
                              Rng& rng);

}  // namespace provenance
}  // namespace qfix

#endif  // QFIX_PROVENANCE_COMPLAINT_H_
