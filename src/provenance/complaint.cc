#include "provenance/complaint.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace qfix {
namespace provenance {

void ComplaintSet::Add(Complaint c) {
  QFIX_CHECK(c.tid >= 0) << "complaint on unnamed tuple";
  auto it = std::lower_bound(
      complaints_.begin(), complaints_.end(), c.tid,
      [](const Complaint& a, int64_t tid) { return a.tid < tid; });
  if (it != complaints_.end() && it->tid == c.tid) {
    *it = std::move(c);  // keep the set consistent: one complaint per tuple
  } else {
    complaints_.insert(it, std::move(c));
  }
}

const Complaint* ComplaintSet::Find(int64_t tid) const {
  auto it = std::lower_bound(
      complaints_.begin(), complaints_.end(), tid,
      [](const Complaint& a, int64_t t) { return a.tid < t; });
  if (it != complaints_.end() && it->tid == tid) return &*it;
  return nullptr;
}

AttrSet ComplaintSet::ComplaintAttributes(
    const relational::Database& dirty) const {
  const size_t num_attrs = dirty.schema().num_attrs();
  AttrSet attrs(num_attrs);
  for (const Complaint& c : complaints_) {
    QFIX_CHECK(static_cast<size_t>(c.tid) < dirty.NumSlots())
        << "complaint tid " << c.tid << " beyond dirty state";
    const relational::Tuple& t = dirty.slot(static_cast<size_t>(c.tid));
    if (t.alive != c.target_alive) {
      for (size_t a = 0; a < num_attrs; ++a) attrs.Insert(a);
      continue;
    }
    for (size_t a = 0; a < num_attrs; ++a) {
      if (t.values[a] != c.target_values[a]) attrs.Insert(a);
    }
  }
  return attrs;
}

relational::Database ComplaintSet::ApplyTo(
    const relational::Database& dirty) const {
  relational::Database out = dirty.Clone();
  for (const Complaint& c : complaints_) {
    relational::Tuple& t = out.slot(static_cast<size_t>(c.tid));
    t.alive = c.target_alive;
    if (c.target_alive) t.values = c.target_values;
  }
  return out;
}

ComplaintSet DiffStates(const relational::Database& dirty,
                        const relational::Database& truth, double tol) {
  QFIX_CHECK(dirty.NumSlots() == truth.NumSlots())
      << "states are not slot-aligned: " << dirty.NumSlots() << " vs "
      << truth.NumSlots();
  const size_t num_attrs = dirty.schema().num_attrs();
  ComplaintSet out;
  for (size_t i = 0; i < dirty.NumSlots(); ++i) {
    const relational::Tuple& d = dirty.slot(i);
    const relational::Tuple& t = truth.slot(i);
    bool differs = d.alive != t.alive;
    if (!differs && d.alive) {
      for (size_t a = 0; a < num_attrs && !differs; ++a) {
        differs = std::fabs(d.values[a] - t.values[a]) > tol;
      }
    }
    if (differs) {
      out.Add(Complaint{d.tid, t.alive, t.values});
    }
  }
  return out;
}

ComplaintSet SampleComplaints(const ComplaintSet& full, double keep_fraction,
                              Rng& rng) {
  QFIX_CHECK(keep_fraction >= 0.0 && keep_fraction <= 1.0);
  ComplaintSet out;
  for (const Complaint& c : full.complaints()) {
    if (rng.Bernoulli(keep_fraction)) out.Add(c);
  }
  if (out.empty() && !full.empty()) {
    out.Add(full.complaints()[rng.Index(full.size())]);
  }
  return out;
}

}  // namespace provenance
}  // namespace qfix
