// Query impact analysis: full-impact F(q) (Algorithm 2), relevant-query
// and relevant-attribute sets for the slicing optimizations (§5.2, §5.3).
#ifndef QFIX_PROVENANCE_IMPACT_H_
#define QFIX_PROVENANCE_IMPACT_H_

#include <vector>

#include "common/attr_set.h"
#include "provenance/complaint.h"
#include "relational/query.h"

namespace qfix {
namespace provenance {

/// F(q_i) for every query (Alg. 2): the direct impact I(q_i) unioned with
/// the full impact of every later query whose dependency P(q_j) overlaps
/// the accumulating set. Computed back to front in O(n^2) set operations.
std::vector<AttrSet> ComputeFullImpacts(const relational::QueryLog& log,
                                        size_t num_attrs);

/// Rel(Q) (§5.2): indexes of queries that may have caused the complaints.
/// With `single_corruption` the stricter filter applies — only queries
/// whose full impact covers *all* complaint attributes qualify, since a
/// single bad query must explain every complaint attribute.
std::vector<size_t> RelevantQueries(const std::vector<AttrSet>& full_impacts,
                                    const AttrSet& complaint_attrs,
                                    bool single_corruption);

/// Rel(A) (§5.3): attributes any relevant query reads or writes, plus the
/// complaint attributes themselves.
AttrSet RelevantAttributes(const relational::QueryLog& log,
                           const std::vector<size_t>& relevant_queries,
                           const AttrSet& complaint_attrs, size_t num_attrs);

}  // namespace provenance
}  // namespace qfix

#endif  // QFIX_PROVENANCE_IMPACT_H_
