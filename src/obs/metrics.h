// obs::MetricsRegistry — the serving stack's telemetry surface.
//
// Lock-cheap by construction: the hot path touches only owned
// instruments, and every owned instrument is a handful of relaxed
// atomics (a Counter is one fetch_add; a Histogram::Observe is a
// binary search over ~20 edges plus one fetch_add and one CAS-add).
// Label families hand out stable instrument pointers, so callers
// resolve labels once at startup and never pay the map lookup per
// request. Subsystems that already accumulate their own stats
// (cache::ReportCache, DatasetRegistry, ingest::EncodingCache,
// TenantGovernor, the server's request counters) register *callback*
// families instead: the registry asks them for samples only at scrape
// time, so nothing is double-accounted and the hot path pays zero.
//
// RenderPrometheus() emits Prometheus text exposition format 0.0.4
// (# HELP/# TYPE lines, escaped label values, cumulative histogram
// buckets with a +Inf bound) — what GET /metrics serves.
//
// ParseExposition()/LintExposition() are the in-repo consumers: the
// round-trip unit tests, the CI serve-smoke lint (no network, so no
// promtool), and `qfix_load --scrape-metrics` all validate the
// exposition with the same code that could mis-render it — a format
// bug fails the build, not the fleet's scraper.
#ifndef QFIX_OBS_METRICS_H_
#define QFIX_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace qfix {
namespace obs {

/// Monotonically increasing event count. Thread-safe, wait-free.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down. Thread-safe.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with atomic per-bucket counts. Observe() is
/// lock-free; rendering reads relaxed snapshots (Prometheus scrapes
/// tolerate the instantaneous skew, and RenderPrometheus derives
/// _count from the buckets it read so the exposition is always
/// internally consistent).
///
/// Exemplars: ObserveWithExemplar() additionally remembers, per
/// bucket, the request id of the worst recent observation — "worst"
/// meaning the largest value to land in that bucket within the last
/// kExemplarHorizonSeconds. The common case (not a new worst) is two
/// relaxed loads; only a new worst pays the exemplar mutex. The
/// renderer emits them as OpenMetrics-style `# {trace_id="..."} v`
/// suffixes on _bucket lines, which links a latency spike in a scrape
/// straight to a retained trace in the flight recorder.
class Histogram {
 public:
  /// An exemplar slot's freshness window: a stored worst observation
  /// older than this yields to any newer one, so the exemplar tracks
  /// "recently worst", not "worst ever".
  static constexpr double kExemplarHorizonSeconds = 60.0;

  struct Exemplar {
    double value = 0.0;
    std::string trace_id;  // empty = no exemplar recorded
    bool valid() const { return !trace_id.empty(); }
  };

  /// `upper_edges` are the finite bucket bounds, strictly ascending;
  /// an implicit +Inf bucket is appended.
  explicit Histogram(std::vector<double> upper_edges);

  void Observe(double value);
  /// Observe() plus exemplar bookkeeping; `trace_id` empty degrades to
  /// a plain Observe().
  void ObserveWithExemplar(double value, std::string_view trace_id);

  const std::vector<double>& edges() const { return edges_; }
  /// Non-cumulative count of bucket `i` (i == edges().size() is +Inf).
  uint64_t BucketCount(size_t i) const;
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// The exemplar for bucket `i` (same indexing as BucketCount).
  Exemplar ExemplarFor(size_t i) const;

 private:
  struct ExemplarSlot {
    /// Fast-path filter: current worst value and when it was set.
    std::atomic<double> value{-1.0};
    std::atomic<double> stamp_seconds{0.0};
    /// Guarded by exemplar_mu_ (strings can't be atomic).
    std::string trace_id;
  };

  std::vector<double> edges_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // edges_.size() + 1
  std::atomic<double> sum_{0.0};
  mutable std::mutex exemplar_mu_;
  std::unique_ptr<ExemplarSlot[]> exemplars_;  // edges_.size() + 1
  /// Set on the first ObserveWithExemplar(): lets the renderer skip
  /// the slot scan for histograms that never carry exemplars.
  std::atomic<bool> has_exemplars_{false};
};

/// Default histogram edges for latency-in-seconds metrics, derived from
/// harness::LatencyHistogram's HDR bucket layout: the last 1us-exact
/// linear bucket, then the top sub-bucket of each power-of-two group —
/// (64 << g) - 1 microseconds — up to ~67s. Same quantization family
/// as the load harness, coarsened to a Prometheus-friendly 21 edges.
std::vector<double> DefaultLatencyBucketEdges();

namespace internal {
struct Family;
}  // namespace internal

/// A named counter metric with fixed label names. WithLabels() returns
/// a stable pointer — resolve once, Inc() forever.
class CounterFamily {
 public:
  Counter* WithLabels(std::vector<std::string> label_values);
  /// The label-less series (only valid for families with no labels).
  Counter* Get() { return WithLabels({}); }

 private:
  friend class MetricsRegistry;
  explicit CounterFamily(internal::Family* family) : family_(family) {}
  internal::Family* family_;
};

class GaugeFamily {
 public:
  Gauge* WithLabels(std::vector<std::string> label_values);
  Gauge* Get() { return WithLabels({}); }

 private:
  friend class MetricsRegistry;
  explicit GaugeFamily(internal::Family* family) : family_(family) {}
  internal::Family* family_;
};

class HistogramFamily {
 public:
  Histogram* WithLabels(std::vector<std::string> label_values);
  Histogram* Get() { return WithLabels({}); }

 private:
  friend class MetricsRegistry;
  explicit HistogramFamily(internal::Family* family) : family_(family) {}
  internal::Family* family_;
};

class MetricsRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  /// One scrape-time sample a callback family emits: label values (in
  /// the family's label-name order) and the value.
  struct Sample {
    std::vector<std::string> label_values;
    double value = 0.0;
  };
  using CollectFn = std::function<void(std::vector<Sample>*)>;

  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register an owned family. Name/label validity and uniqueness are
  /// QFIX_CHECKed — a bad metric name is a programming error, not a
  /// runtime condition. The returned family outlives the registry call
  /// sites (owned by the registry, freed with it).
  CounterFamily* AddCounter(std::string name, std::string help,
                            std::vector<std::string> label_names = {});
  GaugeFamily* AddGauge(std::string name, std::string help,
                        std::vector<std::string> label_names = {});
  HistogramFamily* AddHistogram(std::string name, std::string help,
                                std::vector<double> upper_edges,
                                std::vector<std::string> label_names = {});

  /// Register a scrape-time callback family (counter or gauge): `fn`
  /// runs inside RenderPrometheus() and emits the family's current
  /// samples. This is how subsystems with their own stats structs
  /// (cache, registry, governor, ingest) export without maintaining a
  /// second set of counters on the hot path.
  void AddCallback(std::string name, std::string help, Kind kind,
                   std::vector<std::string> label_names, CollectFn fn);

  /// Prometheus text exposition format 0.0.4, families sorted by name,
  /// series sorted by label values.
  std::string RenderPrometheus() const;

 private:
  internal::Family* AddFamily(std::string name, std::string help, Kind kind,
                              std::vector<std::string> label_names);

  mutable std::mutex mu_;  // guards families_ layout (not instrument values)
  std::map<std::string, std::unique_ptr<internal::Family>> families_;
  std::vector<std::unique_ptr<CounterFamily>> counter_handles_;
  std::vector<std::unique_ptr<GaugeFamily>> gauge_handles_;
  std::vector<std::unique_ptr<HistogramFamily>> histogram_handles_;
};

/// True for a legal Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*.
bool ValidMetricName(std::string_view name);
/// True for a legal label name: [a-zA-Z_][a-zA-Z0-9_]* (not __-prefixed).
bool ValidLabelName(std::string_view name);

// ---------------------------------------------------------------------------
// Exposition parsing + lint (test/CI/load-generator consumers)

struct ParsedSample {
  std::string name;
  /// In source order; values are unescaped.
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
  int line = 0;
  /// OpenMetrics-style exemplar suffix (`# {labels} value`), when the
  /// sample carried one.
  bool has_exemplar = false;
  std::vector<std::pair<std::string, std::string>> exemplar_labels;
  double exemplar_value = 0.0;

  /// Label value by name, or nullptr.
  const std::string* FindLabel(std::string_view name) const;
  /// Exemplar label value by name, or nullptr.
  const std::string* FindExemplarLabel(std::string_view name) const;
};

struct ParsedExposition {
  /// Family name -> declared TYPE ("counter", "gauge", "histogram", ...).
  std::map<std::string, std::string> types;
  /// Family name -> HELP text (unescaped).
  std::map<std::string, std::string> help;
  /// 1-based line number of each family's # TYPE declaration.
  std::map<std::string, int> type_line;
  std::vector<ParsedSample> samples;
};

/// Parses text exposition format. Fails with InvalidArgument (naming
/// the line) on malformed lines, bad escapes, or unparseable values.
Result<ParsedExposition> ParseExposition(std::string_view text);

/// Strict format lint over one exposition payload:
///   * parses cleanly; every metric and label name is legal;
///   * every sample belongs to a family whose # TYPE precedes it;
///   * no duplicate series (same name + label set);
///   * counter samples are finite and non-negative;
///   * histograms: per label set, `le` bounds strictly ascending with a
///     +Inf bucket, cumulative bucket counts non-decreasing, _count
///     equal to the +Inf bucket, and _sum present;
///   * exemplars only on _bucket series, with legal label names and an
///     exemplar value within the bucket's `le` bound.
/// OK means a Prometheus scraper will ingest the payload verbatim.
Status LintExposition(std::string_view text);

}  // namespace obs
}  // namespace qfix

#endif  // QFIX_OBS_METRICS_H_
