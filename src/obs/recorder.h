// TraceRecorder — the flight recorder behind GET /v1/debug/traces.
//
// A fixed-byte-budget ring buffer of *completed* request traces with
// tail-based sampling: the retention decision is made when the request
// finishes (its outcome and duration are known), not when it starts.
// Slow (>= the configured threshold), errored, and shed requests are
// retained with probability 1.0 — those are the requests an operator
// asks about — while fast-and-fine traffic is down-sampled to a
// configurable probability so the ring holds history instead of noise.
// The watchdog (obs/watchdog.h) can additionally pin a request id
// before its trace completes (ForceRetain); the trace is then kept
// regardless of sampling when it lands.
//
// Lock-cheap by construction: the sampling decision for the common
// drop case (ok-fast trace, probability miss, no pin outstanding) is
// one relaxed atomic read plus one hash — no lock is taken and the
// trace is never copied. Only retained traces pay the mutex + deque
// push; snapshots copy out under the same mutex (debug-endpoint rate,
// not request rate).
//
// Retention probability for the fast path is deterministic per
// recorder: a SplitMix64 hash over an atomic sequence number, so unit
// tests can assert exact guarantees (p=1.0 keeps everything, p=0.0
// keeps nothing, slow/error/shed always survive).
#ifndef QFIX_OBS_RECORDER_H_
#define QFIX_OBS_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace qfix {
namespace obs {

/// How a recorded request ended. kSlow means "completed OK but at or
/// over the slow threshold" — slowness outranks plain success so the
/// traces an operator filters for are labeled as such.
enum class TraceOutcome { kOk, kSlow, kError, kShed };

/// "ok" / "slow" / "error" / "shed".
const char* TraceOutcomeName(TraceOutcome outcome);
/// Parses an outcome name; false on unknown input (out untouched).
bool ParseTraceOutcome(std::string_view name, TraceOutcome* out);

/// One completed request's trace, as kept by the ring.
struct RetainedTrace {
  std::string request_id;
  std::string tenant;
  std::string dataset;
  std::string endpoint;
  TraceOutcome outcome = TraceOutcome::kOk;
  int http_status = 200;
  double duration_seconds = 0.0;
  /// Wall-clock (unix) seconds when the trace was recorded; for
  /// operator display only, never compared against the monotonic span
  /// offsets.
  double recorded_unix_seconds = 0.0;
  /// True when retention was forced (watchdog pin), not earned by the
  /// outcome or the sampler.
  bool forced = false;
  /// Why the trace survived: "slow", "error", "shed", "sampled", or
  /// the watchdog's pin reason (e.g. "stall:solve_deadline").
  std::string retain_reason;
  std::vector<TraceSpan> spans;

  /// Heap-aware size estimate used against the ring's byte budget.
  size_t ApproxBytes() const;
};

class TraceRecorder {
 public:
  struct Options {
    /// Ring budget over RetainedTrace::ApproxBytes(); the oldest
    /// traces are evicted to fit. Minimum one trace is always kept.
    size_t byte_budget = 4 * 1024 * 1024;
    /// Retention probability for ok-fast traces in [0, 1]. Slow,
    /// errored, shed, and pinned traces ignore it (always kept).
    double sample_probability = 0.0;
    /// Completed-OK requests with duration >= this are classified
    /// kSlow and always retained. 0 disables slowness classification.
    double slow_threshold_seconds = 0.0;
  };

  struct Stats {
    /// Completed traces offered to Record().
    uint64_t recorded_total = 0;
    /// Traces that entered the ring (including since-evicted ones).
    uint64_t retained_total = 0;
    /// Ok-fast traces the sampler dropped.
    uint64_t sampled_out_total = 0;
    /// Traces kept only because a watchdog pin matched.
    uint64_t forced_total = 0;
    /// Traces pushed out by the byte budget.
    uint64_t evicted_total = 0;
    /// Current ring occupancy.
    size_t buffered = 0;
    size_t buffered_bytes = 0;
    size_t byte_budget = 0;
  };

  explicit TraceRecorder(Options options);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Classifies (outcome upgrade to kSlow happens here), decides
  /// retention, and stores the trace if it survives. Returns true when
  /// the trace was retained. Thread-safe; the common drop path takes
  /// no lock.
  bool Record(RetainedTrace trace);

  /// Pins `request_id`: when its completed trace arrives it is
  /// retained regardless of sampling, marked forced, carrying
  /// `reason`. Bounded (oldest pin dropped past 64); a pin is consumed
  /// by the matching Record(). Re-pinning an id refreshes its reason.
  void ForceRetain(const std::string& request_id, std::string reason);

  struct Filter {
    /// Empty matches any.
    std::string tenant;
    std::string dataset;
    double min_duration_seconds = 0.0;
    bool has_outcome = false;
    TraceOutcome outcome = TraceOutcome::kOk;
    /// Maximum traces returned (newest first).
    size_t limit = 64;
  };
  /// Matching traces, newest first.
  std::vector<RetainedTrace> Snapshot(const Filter& filter) const;

  Stats stats() const;

 private:
  bool SampledIn();

  const Options options_;
  /// Nonzero when any pin is outstanding: lets the hot drop path skip
  /// the pin-table lock entirely.
  std::atomic<int> pins_outstanding_{0};
  std::atomic<uint64_t> sample_seq_{0};
  std::atomic<uint64_t> recorded_total_{0};
  std::atomic<uint64_t> sampled_out_total_{0};

  mutable std::mutex mu_;
  std::deque<RetainedTrace> ring_;  // oldest at front
  size_t ring_bytes_ = 0;
  uint64_t retained_total_ = 0;
  uint64_t forced_total_ = 0;
  uint64_t evicted_total_ = 0;
  /// (request_id, reason), oldest first, bounded at kMaxPins.
  std::vector<std::pair<std::string, std::string>> pins_;
  static constexpr size_t kMaxPins = 64;
};

}  // namespace obs
}  // namespace qfix

#endif  // QFIX_OBS_RECORDER_H_
