#include "obs/recorder.h"

#include <algorithm>
#include <ctime>

namespace qfix {
namespace obs {

const char* TraceOutcomeName(TraceOutcome outcome) {
  switch (outcome) {
    case TraceOutcome::kOk: return "ok";
    case TraceOutcome::kSlow: return "slow";
    case TraceOutcome::kError: return "error";
    case TraceOutcome::kShed: return "shed";
  }
  return "?";
}

bool ParseTraceOutcome(std::string_view name, TraceOutcome* out) {
  for (TraceOutcome o : {TraceOutcome::kOk, TraceOutcome::kSlow,
                         TraceOutcome::kError, TraceOutcome::kShed}) {
    if (name == TraceOutcomeName(o)) {
      *out = o;
      return true;
    }
  }
  return false;
}

size_t RetainedTrace::ApproxBytes() const {
  size_t bytes = sizeof(RetainedTrace);
  bytes += request_id.capacity() + tenant.capacity() + dataset.capacity() +
           endpoint.capacity() + retain_reason.capacity();
  bytes += spans.capacity() * sizeof(TraceSpan);
  for (const TraceSpan& span : spans) bytes += span.phase.capacity();
  return bytes;
}

namespace {

uint64_t SplitMix64(uint64_t x) {
  uint64_t z = x + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

TraceRecorder::TraceRecorder(Options options) : options_(options) {}

bool TraceRecorder::SampledIn() {
  if (options_.sample_probability >= 1.0) return true;
  if (options_.sample_probability <= 0.0) return false;
  uint64_t seq = sample_seq_.fetch_add(1, std::memory_order_relaxed);
  // 53 high bits -> uniform double in [0, 1).
  double u = static_cast<double>(SplitMix64(seq) >> 11) * 0x1.0p-53;
  return u < options_.sample_probability;
}

bool TraceRecorder::Record(RetainedTrace trace) {
  recorded_total_.fetch_add(1, std::memory_order_relaxed);

  // Tail classification: a completed-OK request at/over the slow
  // threshold is upgraded so filters and retention see it as slow.
  if (trace.outcome == TraceOutcome::kOk &&
      options_.slow_threshold_seconds > 0.0 &&
      trace.duration_seconds >= options_.slow_threshold_seconds) {
    trace.outcome = TraceOutcome::kSlow;
  }

  bool keep = trace.outcome != TraceOutcome::kOk;
  if (keep && trace.retain_reason.empty()) {
    trace.retain_reason = TraceOutcomeName(trace.outcome);
  }

  bool maybe_pinned =
      pins_outstanding_.load(std::memory_order_acquire) > 0;
  if (!keep && !maybe_pinned) {
    // The common path: ok-fast trace, nothing pinned. One atomic and
    // one hash, no lock, trace freed on return.
    if (!SampledIn()) {
      sampled_out_total_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    keep = true;
    trace.retain_reason = "sampled";
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (maybe_pinned) {
    for (auto it = pins_.begin(); it != pins_.end(); ++it) {
      if (it->first == trace.request_id) {
        trace.forced = true;
        trace.retain_reason = std::move(it->second);
        pins_.erase(it);
        pins_outstanding_.fetch_sub(1, std::memory_order_release);
        ++forced_total_;
        keep = true;
        break;
      }
    }
    if (!keep) {
      // Pin table didn't match; fall back to the sampler.
      if (!SampledIn()) {
        sampled_out_total_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      keep = true;
      trace.retain_reason = "sampled";
    }
  }

  trace.recorded_unix_seconds =
      static_cast<double>(std::time(nullptr));
  ring_bytes_ += trace.ApproxBytes();
  ring_.push_back(std::move(trace));
  ++retained_total_;
  // Evict oldest past the budget, but never the trace just added: a
  // single oversized trace still lands (budget as a soft ceiling beats
  // silently losing the one slow request the operator wants).
  while (ring_.size() > 1 && ring_bytes_ > options_.byte_budget) {
    ring_bytes_ -= ring_.front().ApproxBytes();
    ring_.pop_front();
    ++evicted_total_;
  }
  return true;
}

void TraceRecorder::ForceRetain(const std::string& request_id,
                                std::string reason) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, r] : pins_) {
    if (id == request_id) {
      r = std::move(reason);
      return;
    }
  }
  if (pins_.size() >= kMaxPins) {
    pins_.erase(pins_.begin());
    pins_outstanding_.fetch_sub(1, std::memory_order_release);
  }
  pins_.emplace_back(request_id, std::move(reason));
  pins_outstanding_.fetch_add(1, std::memory_order_release);
}

std::vector<RetainedTrace> TraceRecorder::Snapshot(
    const Filter& filter) const {
  std::vector<RetainedTrace> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if (out.size() >= filter.limit) break;
    const RetainedTrace& t = *it;
    if (!filter.tenant.empty() && t.tenant != filter.tenant) continue;
    if (!filter.dataset.empty() && t.dataset != filter.dataset) continue;
    if (t.duration_seconds < filter.min_duration_seconds) continue;
    if (filter.has_outcome && t.outcome != filter.outcome) continue;
    out.push_back(t);
  }
  return out;
}

TraceRecorder::Stats TraceRecorder::stats() const {
  Stats s;
  s.recorded_total = recorded_total_.load(std::memory_order_relaxed);
  s.sampled_out_total = sampled_out_total_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  s.retained_total = retained_total_;
  s.forced_total = forced_total_;
  s.evicted_total = evicted_total_;
  s.buffered = ring_.size();
  s.buffered_bytes = ring_bytes_;
  s.byte_budget = options_.byte_budget;
  return s;
}

}  // namespace obs
}  // namespace qfix
