// obs::Watchdog — notices when the process stops making progress.
//
// Three stall classes, one monitor thread:
//   * event_loop: each event loop registers a heartbeat and bumps it
//     every iteration (one relaxed atomic store of the monotonic
//     clock). A heartbeat older than the threshold means the loop is
//     wedged — a handler ran inline too long, a syscall hung.
//   * solve_deadline: in-flight solves register on entry; one running
//     longer than the warn deadline is flagged (once) while still
//     running, so the operator learns about the runaway solve before
//     it finishes — or doesn't.
//   * admission_starvation: a host-supplied probe reports whether the
//     admission gate has been pinned at capacity and shedding for the
//     whole starvation window.
//
// Detection is edge-triggered per entity: one event when a heartbeat
// goes stale (re-armed on recovery), one per overdue solve, one per
// starvation episode. The watchdog itself only observes — the host's
// callback does the judging (WARN `stall` log line, the
// qfix_stalls_total{kind} counter, force-retaining the trace in the
// recorder).
//
// The monitor thread wakes every poll interval and on Stop(); probes
// are cheap (a few atomic loads per registered entity), so the
// interval can be short without showing up anywhere.
#ifndef QFIX_OBS_WATCHDOG_H_
#define QFIX_OBS_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace qfix {
namespace obs {

class Watchdog {
 public:
  struct Options {
    double poll_interval_seconds = 0.25;
    /// Heartbeat staleness beyond this is an event_loop stall.
    /// 0 disables the heartbeat probe.
    double loop_stall_seconds = 1.0;
    /// In-flight solves older than this are flagged. 0 disables.
    double solve_deadline_warn_seconds = 0.0;
    /// Starvation probe must report shedding-at-capacity continuously
    /// for this long. 0 disables.
    double starvation_window_seconds = 0.0;
  };

  struct StallEvent {
    /// "event_loop" | "solve_deadline" | "admission_starvation".
    std::string kind;
    /// The wedged loop's name, or the overdue solve's request id, or
    /// the probe's detail string.
    std::string detail;
    /// Request id to force-retain, when one is implicated (overdue
    /// solves carry theirs; loop/starvation stalls have none).
    std::string request_id;
    /// How long the entity has been stalled, seconds.
    double age_seconds = 0.0;
  };
  /// Runs on the monitor thread; must not block for long.
  using StallFn = std::function<void(const StallEvent&)>;

  Watchdog(Options options, StallFn on_stall);
  ~Watchdog();  // stops if running

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void Start();
  void Stop();

  /// Registers a heartbeat (call before Start; returns its handle).
  int RegisterHeartbeat(std::string name);
  /// Marks heartbeat `handle` alive now. Wait-free; called every loop
  /// iteration.
  void Beat(int handle);

  /// Registers an in-flight solve; returns a token for EndSolve().
  /// Cheap enough for once-per-admitted-request use.
  uint64_t BeginSolve(std::string request_id);
  void EndSolve(uint64_t token);

  /// Starvation probe: return true while the admission gate is pinned
  /// at capacity and shedding; fill `detail` for the event. Install
  /// before Start().
  using StarvationProbe = std::function<bool(std::string* detail)>;
  void SetStarvationProbe(StarvationProbe probe);

  /// One synchronous sweep (what the monitor thread runs each tick);
  /// exposed so tests need no timing dependence. Returns events fired.
  int PollOnce();

 private:
  struct Heartbeat {
    std::string name;
    std::atomic<double> last_beat_seconds{0.0};
    bool stalled = false;  // monitor-thread state (edge trigger)
  };
  struct InflightSolve {
    uint64_t token = 0;
    std::string request_id;
    double started_seconds = 0.0;
    bool flagged = false;
  };

  void Run();

  const Options options_;
  const StallFn on_stall_;

  std::vector<std::unique_ptr<Heartbeat>> heartbeats_;

  std::mutex solves_mu_;
  std::vector<InflightSolve> solves_;
  uint64_t next_token_ = 1;

  StarvationProbe starvation_probe_;
  double starving_since_seconds_ = 0.0;  // 0 = not currently starving
  bool starvation_flagged_ = false;

  std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace obs
}  // namespace qfix

#endif  // QFIX_OBS_WATCHDOG_H_
