#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <set>

#include "common/logging.h"
#include "common/strings.h"
#include "common/timer.h"
#include "harness/histogram.h"

namespace qfix {
namespace obs {

namespace {

/// Render a double the way the exposition expects: integral values as
/// integers, everything else with enough digits to survive a strtod
/// round trip of our edge values, +Inf spelled the Prometheus way.
std::string FormatValue(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    return StringPrintf("%.0f", v);
  }
  return StringPrintf("%.10g", v);
}

void AppendEscapedLabelValue(std::string* out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '"': *out += "\\\""; break;
      case '\n': *out += "\\n"; break;
      default: *out += c;
    }
  }
}

void AppendEscapedHelp(std::string* out, std::string_view help) {
  for (char c : help) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default: *out += c;
    }
  }
}

void AppendLabels(std::string* out,
                  const std::vector<std::string>& label_names,
                  const std::vector<std::string>& label_values,
                  const char* extra_name = nullptr,
                  const std::string* extra_value = nullptr) {
  if (label_names.empty() && extra_name == nullptr) return;
  *out += '{';
  bool first = true;
  for (size_t i = 0; i < label_names.size(); ++i) {
    if (!first) *out += ',';
    first = false;
    *out += label_names[i];
    *out += "=\"";
    AppendEscapedLabelValue(out, label_values[i]);
    *out += '"';
  }
  if (extra_name != nullptr) {
    if (!first) *out += ',';
    *out += extra_name;
    *out += "=\"";
    AppendEscapedLabelValue(out, *extra_value);
    *out += '"';
  }
  *out += '}';
}

const char* KindName(MetricsRegistry::Kind kind) {
  switch (kind) {
    case MetricsRegistry::Kind::kCounter: return "counter";
    case MetricsRegistry::Kind::kGauge: return "gauge";
    case MetricsRegistry::Kind::kHistogram: return "histogram";
  }
  return "untyped";
}

}  // namespace

// ---------------------------------------------------------------------------
// Instruments

void Gauge::Add(double delta) {
  double cur = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)),
      buckets_(new std::atomic<uint64_t>[edges_.size() + 1]),
      exemplars_(new ExemplarSlot[edges_.size() + 1]) {
  for (size_t i = 0; i + 1 < edges_.size(); ++i) {
    QFIX_CHECK(edges_[i] < edges_[i + 1])
        << "histogram edges must be strictly ascending";
  }
  for (size_t i = 0; i <= edges_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  if (std::isnan(value)) return;
  // Prometheus `le` bounds are inclusive: an observation equal to an
  // edge lands in that edge's bucket (lower_bound, not upper_bound).
  size_t idx = static_cast<size_t>(
      std::lower_bound(edges_.begin(), edges_.end(), value) - edges_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::ObserveWithExemplar(double value, std::string_view trace_id) {
  Observe(value);
  if (trace_id.empty() || std::isnan(value)) return;
  size_t idx = static_cast<size_t>(
      std::lower_bound(edges_.begin(), edges_.end(), value) - edges_.begin());
  ExemplarSlot& slot = exemplars_[idx];
  const double now = MonotonicSeconds();
  // Fast filter: not a new worst and the stored worst is still fresh —
  // nothing to do, no lock taken. This is the overwhelmingly common
  // outcome (most requests are not the bucket's recent maximum).
  double cur = slot.value.load(std::memory_order_relaxed);
  double stamp = slot.stamp_seconds.load(std::memory_order_relaxed);
  if (value < cur && now - stamp < kExemplarHorizonSeconds) return;
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  cur = slot.value.load(std::memory_order_relaxed);
  stamp = slot.stamp_seconds.load(std::memory_order_relaxed);
  if (value < cur && now - stamp < kExemplarHorizonSeconds) return;
  slot.value.store(value, std::memory_order_relaxed);
  slot.stamp_seconds.store(now, std::memory_order_relaxed);
  slot.trace_id.assign(trace_id.data(), trace_id.size());
  has_exemplars_.store(true, std::memory_order_release);
}

Histogram::Exemplar Histogram::ExemplarFor(size_t i) const {
  QFIX_CHECK(i <= edges_.size());
  Exemplar out;
  if (!has_exemplars_.load(std::memory_order_acquire)) return out;
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  const ExemplarSlot& slot = exemplars_[i];
  if (slot.trace_id.empty()) return out;
  out.value = slot.value.load(std::memory_order_relaxed);
  out.trace_id = slot.trace_id;
  return out;
}

uint64_t Histogram::BucketCount(size_t i) const {
  QFIX_CHECK(i <= edges_.size());
  return buckets_[i].load(std::memory_order_relaxed);
}

std::vector<double> DefaultLatencyBucketEdges() {
  using harness::LatencyHistogram;
  std::vector<double> edges;
  // The last 1us-exact linear bucket (63us)...
  edges.push_back(static_cast<double>(LatencyHistogram::UpperEdgeUs(
                      LatencyHistogram::kLinearBuckets - 1)) *
                  1e-6);
  // ...then the top sub-bucket of each power-of-two group: (64<<g)-1 us.
  // 20 groups reach ~67s, past any served request's budget.
  for (int g = 1; g <= 20; ++g) {
    size_t index = static_cast<size_t>(LatencyHistogram::kLinearBuckets) +
                   static_cast<size_t>(g) * LatencyHistogram::kSubBuckets - 1;
    edges.push_back(static_cast<double>(LatencyHistogram::UpperEdgeUs(index)) *
                    1e-6);
  }
  return edges;
}

// ---------------------------------------------------------------------------
// Families

namespace internal {

struct Family {
  std::string name;
  std::string help;
  MetricsRegistry::Kind kind = MetricsRegistry::Kind::kCounter;
  std::vector<std::string> label_names;
  std::vector<double> edges;  // histogram families only

  /// Guards the series maps; never held while a caller uses an
  /// instrument (pointers are stable — std::map nodes don't move).
  std::mutex mu;
  std::map<std::vector<std::string>, std::unique_ptr<Counter>> counters;
  std::map<std::vector<std::string>, std::unique_ptr<Gauge>> gauges;
  std::map<std::vector<std::string>, std::unique_ptr<Histogram>> histograms;

  /// Non-null for callback families.
  MetricsRegistry::CollectFn collect;
};

}  // namespace internal

Counter* CounterFamily::WithLabels(std::vector<std::string> label_values) {
  internal::Family* f = family_;
  QFIX_CHECK(label_values.size() == f->label_names.size())
      << f->name << ": expected " << f->label_names.size()
      << " label values, got " << label_values.size();
  std::lock_guard<std::mutex> lock(f->mu);
  auto& slot = f->counters[std::move(label_values)];
  if (slot == nullptr) slot.reset(new Counter());
  return slot.get();
}

Gauge* GaugeFamily::WithLabels(std::vector<std::string> label_values) {
  internal::Family* f = family_;
  QFIX_CHECK(label_values.size() == f->label_names.size())
      << f->name << ": expected " << f->label_names.size()
      << " label values, got " << label_values.size();
  std::lock_guard<std::mutex> lock(f->mu);
  auto& slot = f->gauges[std::move(label_values)];
  if (slot == nullptr) slot.reset(new Gauge());
  return slot.get();
}

Histogram* HistogramFamily::WithLabels(std::vector<std::string> label_values) {
  internal::Family* f = family_;
  QFIX_CHECK(label_values.size() == f->label_names.size())
      << f->name << ": expected " << f->label_names.size()
      << " label values, got " << label_values.size();
  std::lock_guard<std::mutex> lock(f->mu);
  auto& slot = f->histograms[std::move(label_values)];
  if (slot == nullptr) slot.reset(new Histogram(f->edges));
  return slot.get();
}

// ---------------------------------------------------------------------------
// Registry

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

internal::Family* MetricsRegistry::AddFamily(
    std::string name, std::string help, Kind kind,
    std::vector<std::string> label_names) {
  QFIX_CHECK(ValidMetricName(name)) << "bad metric name: " << name;
  for (const std::string& label : label_names) {
    QFIX_CHECK(ValidLabelName(label))
        << name << ": bad label name: " << label;
    QFIX_CHECK(label != "le") << name << ": 'le' is reserved for histograms";
  }
  auto family = std::make_unique<internal::Family>();
  family->name = std::move(name);
  family->help = std::move(help);
  family->kind = kind;
  family->label_names = std::move(label_names);
  internal::Family* raw = family.get();
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = families_.emplace(raw->name, std::move(family));
  QFIX_CHECK(inserted) << "metric registered twice: " << it->first;
  return raw;
}

CounterFamily* MetricsRegistry::AddCounter(
    std::string name, std::string help,
    std::vector<std::string> label_names) {
  internal::Family* f = AddFamily(std::move(name), std::move(help),
                                  Kind::kCounter, std::move(label_names));
  std::lock_guard<std::mutex> lock(mu_);
  counter_handles_.emplace_back(new CounterFamily(f));
  return counter_handles_.back().get();
}

GaugeFamily* MetricsRegistry::AddGauge(std::string name, std::string help,
                                       std::vector<std::string> label_names) {
  internal::Family* f = AddFamily(std::move(name), std::move(help),
                                  Kind::kGauge, std::move(label_names));
  std::lock_guard<std::mutex> lock(mu_);
  gauge_handles_.emplace_back(new GaugeFamily(f));
  return gauge_handles_.back().get();
}

HistogramFamily* MetricsRegistry::AddHistogram(
    std::string name, std::string help, std::vector<double> upper_edges,
    std::vector<std::string> label_names) {
  QFIX_CHECK(!upper_edges.empty()) << name << ": histogram needs edges";
  internal::Family* f = AddFamily(std::move(name), std::move(help),
                                  Kind::kHistogram, std::move(label_names));
  f->edges = std::move(upper_edges);
  std::lock_guard<std::mutex> lock(mu_);
  histogram_handles_.emplace_back(new HistogramFamily(f));
  return histogram_handles_.back().get();
}

void MetricsRegistry::AddCallback(std::string name, std::string help,
                                  Kind kind,
                                  std::vector<std::string> label_names,
                                  CollectFn fn) {
  QFIX_CHECK(kind != Kind::kHistogram)
      << name << ": callback families must be counters or gauges";
  QFIX_CHECK(fn != nullptr) << name << ": null collect callback";
  internal::Family* f = AddFamily(std::move(name), std::move(help), kind,
                                  std::move(label_names));
  f->collect = std::move(fn);
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::string out;
  out.reserve(16 * 1024);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, family] : families_) {
    internal::Family* f = family.get();
    out += "# HELP ";
    out += name;
    out += ' ';
    AppendEscapedHelp(&out, f->help);
    out += '\n';
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += KindName(f->kind);
    out += '\n';

    if (f->collect != nullptr) {
      std::vector<Sample> samples;
      f->collect(&samples);
      for (const Sample& s : samples) {
        QFIX_CHECK(s.label_values.size() == f->label_names.size())
            << name << ": callback emitted " << s.label_values.size()
            << " label values";
        out += name;
        AppendLabels(&out, f->label_names, s.label_values);
        out += ' ';
        out += FormatValue(s.value);
        out += '\n';
      }
      continue;
    }

    std::lock_guard<std::mutex> series_lock(f->mu);
    switch (f->kind) {
      case Kind::kCounter:
        for (const auto& [values, counter] : f->counters) {
          out += name;
          AppendLabels(&out, f->label_names, values);
          out += ' ';
          out += StringPrintf("%llu", static_cast<unsigned long long>(
                                          counter->Value()));
          out += '\n';
        }
        break;
      case Kind::kGauge:
        for (const auto& [values, gauge] : f->gauges) {
          out += name;
          AppendLabels(&out, f->label_names, values);
          out += ' ';
          out += FormatValue(gauge->Value());
          out += '\n';
        }
        break;
      case Kind::kHistogram:
        for (const auto& [values, hist] : f->histograms) {
          // One relaxed read per bucket; _count derives from the same
          // reads so the rendered series is internally consistent even
          // under concurrent Observe(). Buckets whose histogram carries
          // exemplars get an OpenMetrics-style `# {trace_id="..."} v`
          // suffix — our own parser/linter accept it, and it is what
          // links a scrape's latency spike to a retained trace.
          auto append_exemplar = [&](size_t bucket) {
            Histogram::Exemplar ex = hist->ExemplarFor(bucket);
            if (!ex.valid()) return;
            out += " # {trace_id=\"";
            AppendEscapedLabelValue(&out, ex.trace_id);
            out += "\"} ";
            out += FormatValue(ex.value);
          };
          uint64_t cumulative = 0;
          for (size_t b = 0; b < hist->edges().size(); ++b) {
            cumulative += hist->BucketCount(b);
            std::string le = FormatValue(hist->edges()[b]);
            out += name;
            out += "_bucket";
            AppendLabels(&out, f->label_names, values, "le", &le);
            out += ' ';
            out += StringPrintf("%llu",
                                static_cast<unsigned long long>(cumulative));
            append_exemplar(b);
            out += '\n';
          }
          cumulative += hist->BucketCount(hist->edges().size());
          std::string inf = "+Inf";
          out += name;
          out += "_bucket";
          AppendLabels(&out, f->label_names, values, "le", &inf);
          out += ' ';
          out += StringPrintf("%llu",
                              static_cast<unsigned long long>(cumulative));
          append_exemplar(hist->edges().size());
          out += '\n';
          out += name;
          out += "_sum";
          AppendLabels(&out, f->label_names, values);
          out += ' ';
          out += FormatValue(hist->Sum());
          out += '\n';
          out += name;
          out += "_count";
          AppendLabels(&out, f->label_names, values);
          out += ' ';
          out += StringPrintf("%llu",
                              static_cast<unsigned long long>(cumulative));
          out += '\n';
        }
        break;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Name validation

bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

bool ValidLabelName(std::string_view name) {
  if (name.empty()) return false;
  if (name.size() >= 2 && name[0] == '_' && name[1] == '_') return false;
  auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!head(name[0])) return false;
  for (char c : name.substr(1)) {
    if (!head(c) && !(c >= '0' && c <= '9')) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Exposition parsing

const std::string* ParsedSample::FindLabel(std::string_view name) const {
  for (const auto& [key, value] : labels) {
    if (key == name) return &value;
  }
  return nullptr;
}

const std::string* ParsedSample::FindExemplarLabel(
    std::string_view name) const {
  for (const auto& [key, value] : exemplar_labels) {
    if (key == name) return &value;
  }
  return nullptr;
}

namespace {

Status ParseError(int line, const std::string& message) {
  return Status::InvalidArgument(
      StringPrintf("exposition line %d: %s", line, message.c_str()));
}

/// Parses a `{name="value",...}` block starting at (*ip) == '{';
/// advances *ip past the closing brace. Shared by sample labels and
/// exemplar labels.
Status ParseLabelBlock(
    std::string_view line, size_t* ip, int line_no,
    std::vector<std::pair<std::string, std::string>>* out) {
  size_t i = *ip + 1;  // past '{'
  while (true) {
    while (i < line.size() && (line[i] == ' ' || line[i] == ',')) ++i;
    if (i < line.size() && line[i] == '}') {
      ++i;
      break;
    }
    size_t eq = line.find('=', i);
    if (eq == std::string_view::npos) {
      return ParseError(line_no, "label without '='");
    }
    std::string label_name(line.substr(i, eq - i));
    i = eq + 1;
    if (i >= line.size() || line[i] != '"') {
      return ParseError(line_no, "label value must be quoted");
    }
    ++i;
    std::string value;
    bool closed = false;
    while (i < line.size()) {
      char c = line[i];
      if (c == '\\') {
        if (i + 1 >= line.size()) {
          return ParseError(line_no, "dangling escape in label value");
        }
        char next = line[i + 1];
        if (next == '\\') {
          value += '\\';
        } else if (next == '"') {
          value += '"';
        } else if (next == 'n') {
          value += '\n';
        } else {
          return ParseError(line_no, StringPrintf("bad escape \\%c", next));
        }
        i += 2;
        continue;
      }
      if (c == '"') {
        closed = true;
        ++i;
        break;
      }
      value += c;
      ++i;
    }
    if (!closed) return ParseError(line_no, "unterminated label value");
    out->emplace_back(std::move(label_name), std::move(value));
  }
  *ip = i;
  return Status::OK();
}

/// Parses one numeric sample value; accepts +Inf/-Inf/NaN spellings.
bool ParseSampleValue(std::string_view text, double* out) {
  if (text == "+Inf" || text == "Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "-Inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "NaN") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  std::string buf(text);
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

Result<ParsedExposition> ParseExposition(std::string_view text) {
  ParsedExposition out;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    std::string_view line = eol == std::string_view::npos
                                ? text.substr(pos)
                                : text.substr(pos, eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // "# HELP name text" | "# TYPE name type" | arbitrary comment.
      if (line.rfind("# HELP ", 0) == 0) {
        std::string_view rest = line.substr(7);
        size_t sp = rest.find(' ');
        std::string name(sp == std::string_view::npos ? rest
                                                      : rest.substr(0, sp));
        std::string help_text;
        if (sp != std::string_view::npos) {
          std::string_view raw = rest.substr(sp + 1);
          for (size_t i = 0; i < raw.size(); ++i) {
            if (raw[i] == '\\' && i + 1 < raw.size()) {
              char next = raw[i + 1];
              if (next == 'n') {
                help_text += '\n';
                ++i;
                continue;
              }
              if (next == '\\') {
                help_text += '\\';
                ++i;
                continue;
              }
            }
            help_text += raw[i];
          }
        }
        if (name.empty()) return ParseError(line_no, "HELP without a name");
        out.help[name] = std::move(help_text);
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string_view rest = line.substr(7);
        size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) {
          return ParseError(line_no, "TYPE without a type");
        }
        std::string name(rest.substr(0, sp));
        std::string type(rest.substr(sp + 1));
        if (name.empty() || type.empty()) {
          return ParseError(line_no, "malformed TYPE line");
        }
        if (out.types.count(name) != 0) {
          return ParseError(line_no, "duplicate TYPE for " + name);
        }
        out.types[name] = std::move(type);
        out.type_line[name] = line_no;
        continue;
      }
      continue;  // plain comment
    }

    // Sample: name[{label="value",...}] value [timestamp]
    ParsedSample sample;
    sample.line = line_no;
    size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    if (i == 0) return ParseError(line_no, "sample without a metric name");
    sample.name = std::string(line.substr(0, i));

    if (i < line.size() && line[i] == '{') {
      Status st = ParseLabelBlock(line, &i, line_no, &sample.labels);
      if (!st.ok()) return st;
    }

    while (i < line.size() && line[i] == ' ') ++i;
    size_t value_end = i;
    while (value_end < line.size() && line[value_end] != ' ') ++value_end;
    if (value_end == i) return ParseError(line_no, "sample without a value");
    if (!ParseSampleValue(line.substr(i, value_end - i), &sample.value)) {
      return ParseError(line_no, "unparseable sample value '" +
                                     std::string(line.substr(
                                         i, value_end - i)) +
                                     "'");
    }
    i = value_end;
    while (i < line.size() && line[i] == ' ') ++i;
    if (i < line.size() && line[i] == '#') {
      // OpenMetrics-style exemplar: `# {labels} value`.
      ++i;
      while (i < line.size() && line[i] == ' ') ++i;
      if (i >= line.size() || line[i] != '{') {
        return ParseError(line_no, "exemplar without a label block");
      }
      Status st = ParseLabelBlock(line, &i, line_no, &sample.exemplar_labels);
      if (!st.ok()) return st;
      while (i < line.size() && line[i] == ' ') ++i;
      size_t ex_end = i;
      while (ex_end < line.size() && line[ex_end] != ' ') ++ex_end;
      if (ex_end == i || !ParseSampleValue(line.substr(i, ex_end - i),
                                           &sample.exemplar_value)) {
        return ParseError(line_no, "exemplar without a value");
      }
      sample.has_exemplar = true;
    }
    // Anything else after the value is an optional timestamp; accept
    // and ignore (we never emit one).
    out.samples.push_back(std::move(sample));
  }
  return out;
}

namespace {

/// Family a sample belongs to: histogram series suffixes map back to
/// their base family when (and only when) that base is typed.
std::string FamilyOf(const std::string& sample_name,
                     const std::map<std::string, std::string>& types) {
  if (types.count(sample_name) != 0) return sample_name;
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    size_t len = std::strlen(suffix);
    if (sample_name.size() > len &&
        sample_name.compare(sample_name.size() - len, len, suffix) == 0) {
      std::string base = sample_name.substr(0, sample_name.size() - len);
      auto it = types.find(base);
      if (it != types.end() && it->second == "histogram") return base;
    }
  }
  return "";
}

std::string SeriesKey(const ParsedSample& sample) {
  std::vector<std::pair<std::string, std::string>> sorted = sample.labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = sample.name;
  for (const auto& [name, value] : sorted) {
    key += '\x1f';
    key += name;
    key += '\x1e';
    key += value;
  }
  return key;
}

}  // namespace

Status LintExposition(std::string_view text) {
  auto parsed = ParseExposition(text);
  if (!parsed.ok()) return parsed.status();

  std::set<std::string> seen_series;
  // Histogram bookkeeping: family -> non-le label key -> bucket series.
  struct HistogramGroup {
    std::vector<std::pair<double, double>> buckets;  // (le, cumulative)
    bool has_sum = false;
    bool has_count = false;
    double count_value = 0.0;
    int first_line = 0;
  };
  std::map<std::string, HistogramGroup> groups;

  for (const ParsedSample& s : parsed->samples) {
    if (!ValidMetricName(s.name)) {
      return ParseError(s.line, "illegal metric name '" + s.name + "'");
    }
    std::set<std::string> label_names;
    for (const auto& [name, value] : s.labels) {
      (void)value;
      if (!ValidLabelName(name)) {
        return ParseError(s.line, "illegal label name '" + name + "'");
      }
      if (!label_names.insert(name).second) {
        return ParseError(s.line, "duplicate label '" + name + "'");
      }
    }
    if (!seen_series.insert(SeriesKey(s)).second) {
      return ParseError(s.line, "duplicate series for " + s.name);
    }

    std::string family = FamilyOf(s.name, parsed->types);
    if (family.empty()) {
      return ParseError(s.line, "sample " + s.name + " has no # TYPE");
    }
    auto declared = parsed->type_line.find(family);
    if (declared == parsed->type_line.end() || declared->second > s.line) {
      return ParseError(s.line,
                        "# TYPE for " + family + " must precede its samples");
    }
    const std::string& type = parsed->types.at(family);

    if (type == "counter") {
      if (std::isnan(s.value) || s.value < 0.0) {
        return ParseError(s.line, "counter " + s.name + " is negative/NaN");
      }
    }
    if (s.has_exemplar) {
      if (type != "histogram" || s.name != family + "_bucket") {
        return ParseError(s.line,
                          "exemplar on non-bucket series " + s.name);
      }
      for (const auto& [ex_name, ex_value] : s.exemplar_labels) {
        (void)ex_value;
        if (!ValidLabelName(ex_name)) {
          return ParseError(s.line,
                            "illegal exemplar label '" + ex_name + "'");
        }
      }
      const std::string* le = s.FindLabel("le");
      double bound = 0.0;
      if (le != nullptr && ParseSampleValue(*le, &bound) &&
          !(s.exemplar_value <= bound)) {
        return ParseError(s.line, "exemplar value above the bucket's le");
      }
    }
    if (type == "histogram") {
      // Group by the labels minus `le`.
      std::string group_key = family;
      std::vector<std::pair<std::string, std::string>> rest;
      const std::string* le = nullptr;
      for (const auto& label : s.labels) {
        if (label.first == "le") {
          le = &label.second;
        } else {
          rest.push_back(label);
        }
      }
      std::sort(rest.begin(), rest.end());
      for (const auto& [name, value] : rest) {
        group_key += '\x1f';
        group_key += name;
        group_key += '\x1e';
        group_key += value;
      }
      HistogramGroup& group = groups[group_key];
      if (group.first_line == 0) group.first_line = s.line;
      if (s.name == family + "_bucket") {
        if (le == nullptr) {
          return ParseError(s.line, s.name + " is missing its 'le' label");
        }
        double bound = 0.0;
        if (!ParseSampleValue(*le, &bound)) {
          return ParseError(s.line, "unparseable le '" + *le + "'");
        }
        group.buckets.emplace_back(bound, s.value);
      } else if (s.name == family + "_sum") {
        group.has_sum = true;
      } else if (s.name == family + "_count") {
        group.has_count = true;
        group.count_value = s.value;
      }
    }
  }

  for (const auto& [key, group] : groups) {
    std::string family = key.substr(0, key.find('\x1f'));
    auto fail = [&](const std::string& what) {
      return ParseError(group.first_line, "histogram " + family + ": " + what);
    };
    if (group.buckets.empty()) return fail("no _bucket series");
    for (size_t i = 0; i + 1 < group.buckets.size(); ++i) {
      if (!(group.buckets[i].first < group.buckets[i + 1].first)) {
        return fail("le bounds not strictly ascending");
      }
      if (group.buckets[i].second > group.buckets[i + 1].second) {
        return fail("cumulative bucket counts decrease");
      }
    }
    if (!std::isinf(group.buckets.back().first)) {
      return fail("missing +Inf bucket");
    }
    if (!group.has_sum) return fail("missing _sum");
    if (!group.has_count) return fail("missing _count");
    if (group.count_value != group.buckets.back().second) {
      return fail("_count disagrees with the +Inf bucket");
    }
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace qfix
