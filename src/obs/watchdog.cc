#include "obs/watchdog.h"

#include <chrono>

#include "common/logging.h"
#include "common/timer.h"

namespace qfix {
namespace obs {

Watchdog::Watchdog(Options options, StallFn on_stall)
    : options_(options), on_stall_(std::move(on_stall)) {
  QFIX_CHECK(on_stall_ != nullptr);
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Start() {
  if (running_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { Run(); });
}

void Watchdog::Stop() {
  if (!running_.exchange(false)) return;
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    stop_requested_ = true;
  }
  run_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

int Watchdog::RegisterHeartbeat(std::string name) {
  auto hb = std::make_unique<Heartbeat>();
  hb->name = std::move(name);
  hb->last_beat_seconds.store(MonotonicSeconds(), std::memory_order_relaxed);
  heartbeats_.push_back(std::move(hb));
  return static_cast<int>(heartbeats_.size()) - 1;
}

void Watchdog::Beat(int handle) {
  if (handle < 0 || handle >= static_cast<int>(heartbeats_.size())) return;
  heartbeats_[static_cast<size_t>(handle)]->last_beat_seconds.store(
      MonotonicSeconds(), std::memory_order_relaxed);
}

uint64_t Watchdog::BeginSolve(std::string request_id) {
  std::lock_guard<std::mutex> lock(solves_mu_);
  InflightSolve solve;
  solve.token = next_token_++;
  solve.request_id = std::move(request_id);
  solve.started_seconds = MonotonicSeconds();
  solves_.push_back(std::move(solve));
  return solves_.back().token;
}

void Watchdog::EndSolve(uint64_t token) {
  std::lock_guard<std::mutex> lock(solves_mu_);
  for (auto it = solves_.begin(); it != solves_.end(); ++it) {
    if (it->token == token) {
      solves_.erase(it);
      return;
    }
  }
}

void Watchdog::SetStarvationProbe(StarvationProbe probe) {
  starvation_probe_ = std::move(probe);
}

int Watchdog::PollOnce() {
  int fired = 0;
  const double now = MonotonicSeconds();

  if (options_.loop_stall_seconds > 0.0) {
    for (auto& hb : heartbeats_) {
      double age =
          now - hb->last_beat_seconds.load(std::memory_order_relaxed);
      if (age >= options_.loop_stall_seconds) {
        if (!hb->stalled) {
          hb->stalled = true;
          StallEvent event;
          event.kind = "event_loop";
          event.detail = hb->name;
          event.age_seconds = age;
          on_stall_(event);
          ++fired;
        }
      } else {
        hb->stalled = false;  // recovered: re-arm the edge
      }
    }
  }

  if (options_.solve_deadline_warn_seconds > 0.0) {
    // Collect overdue solves under the lock, fire outside it (the
    // callback logs and touches the recorder; keep BeginSolve cheap).
    std::vector<StallEvent> overdue;
    {
      std::lock_guard<std::mutex> lock(solves_mu_);
      for (InflightSolve& solve : solves_) {
        double age = now - solve.started_seconds;
        if (age >= options_.solve_deadline_warn_seconds && !solve.flagged) {
          solve.flagged = true;
          StallEvent event;
          event.kind = "solve_deadline";
          event.detail = solve.request_id;
          event.request_id = solve.request_id;
          event.age_seconds = age;
          overdue.push_back(std::move(event));
        }
      }
    }
    for (const StallEvent& event : overdue) {
      on_stall_(event);
      ++fired;
    }
  }

  if (options_.starvation_window_seconds > 0.0 && starvation_probe_) {
    std::string detail;
    if (starvation_probe_(&detail)) {
      if (starving_since_seconds_ == 0.0) starving_since_seconds_ = now;
      double age = now - starving_since_seconds_;
      if (age >= options_.starvation_window_seconds &&
          !starvation_flagged_) {
        starvation_flagged_ = true;
        StallEvent event;
        event.kind = "admission_starvation";
        event.detail = detail;
        event.age_seconds = age;
        on_stall_(event);
        ++fired;
      }
    } else {
      starving_since_seconds_ = 0.0;
      starvation_flagged_ = false;
    }
  }

  return fired;
}

void Watchdog::Run() {
  const auto interval = std::chrono::duration<double>(
      options_.poll_interval_seconds > 0.0 ? options_.poll_interval_seconds
                                           : 0.25);
  std::unique_lock<std::mutex> lock(run_mu_);
  while (!stop_requested_) {
    run_cv_.wait_for(lock, interval, [this] { return stop_requested_; });
    if (stop_requested_) break;
    lock.unlock();
    PollOnce();
    lock.lock();
  }
}

}  // namespace obs
}  // namespace qfix
