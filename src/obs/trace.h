// Per-request phase tracing.
//
// A TraceContext is minted when a request enters the server (carrying
// the client's X-Request-Id, or a generated one) and rides through the
// pipeline. Handlers bracket each phase with BeginSpan()/EndSpan();
// span timestamps are offsets from the context's birth on the
// process-wide monotonic clock, so spans recorded on different threads
// (loop thread vs. handler pool) line up. The span list feeds three
// sinks: the opt-in "timings" block on /v1/diagnose responses, the
// per-phase latency histograms in obs::MetricsRegistry, and the
// slow-request log.
//
// Deliberately not thread-safe: one request's spans are recorded by
// one thread at a time (the connection hands the request to exactly
// one handler), and the hot path shouldn't pay for a lock it never
// contends.
#ifndef QFIX_OBS_TRACE_H_
#define QFIX_OBS_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

namespace qfix {
namespace obs {

struct TraceSpan {
  std::string phase;
  /// Offsets in seconds from the TraceContext's birth.
  double start_seconds = 0.0;
  double end_seconds = 0.0;

  double DurationSeconds() const { return end_seconds - start_seconds; }
};

class TraceContext {
 public:
  /// `request_id` empty means "generate one".
  explicit TraceContext(std::string request_id = {});

  const std::string& request_id() const { return request_id_; }

  /// Opens a span at now; returns its index for EndSpan().
  size_t BeginSpan(std::string_view phase);
  /// Closes span `index` at now. No-op for an already-closed span end
  /// in the past — callers may re-close to extend.
  void EndSpan(size_t index);
  /// Records a span with explicit offsets (both relative to birth);
  /// used when a phase's extent is computed after the fact, e.g. the
  /// encode/solve split inside one BatchDiagnoser run.
  void AddSpan(std::string_view phase, double start_seconds,
               double end_seconds);

  /// Seconds since this context was born.
  double ElapsedSeconds() const;

  const std::vector<TraceSpan>& spans() const { return spans_; }

 private:
  std::string request_id_;
  double birth_seconds_ = 0.0;  // monotonic
  std::vector<TraceSpan> spans_;
};

/// A fresh request id: "q-" + 16 lowercase hex digits, unique within
/// the process and effectively unique across restarts (seeded from the
/// clock once). Thread-safe.
std::string GenerateRequestId();

/// Returns the id if it is safe to echo into a response header and a
/// JSON string — 1..64 chars of [A-Za-z0-9._-] — else empty. Anything
/// else (CR/LF header injection, quotes, overlong ids) is discarded
/// and the server generates its own.
std::string SanitizeRequestId(std::string_view id);

}  // namespace obs
}  // namespace qfix

#endif  // QFIX_OBS_TRACE_H_
