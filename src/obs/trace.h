// Per-request phase tracing.
//
// A TraceContext is minted when a request enters the server (carrying
// the client's X-Request-Id, or a generated one) and rides through the
// pipeline. Handlers bracket each phase with BeginSpan()/EndSpan();
// span timestamps are offsets from the context's birth on the
// process-wide monotonic clock, so spans recorded on different threads
// (loop thread vs. handler pool vs. solver workers) line up. Spans
// nest: a span opened with a parent index renders as a child of that
// span (solver-internal phases hang off "solve", the prefix-replay
// span hangs off "encode"). The span list feeds four sinks: the opt-in
// "timings" block on /v1/diagnose responses, the per-phase latency
// histograms in obs::MetricsRegistry, the slow-request log, and the
// flight recorder (obs/recorder.h) for retained traces.
//
// Thread safety: span *recording* is guarded by a small mutex (solver
// child spans arrive from pool workers concurrently). The uncontended
// lock costs ~20ns per span — bench/obs.cpp holds the full
// per-request block under 2% of request p50. Reading spans() is only
// safe once every recording thread has been joined/synchronized (the
// server reads after BatchDiagnoser::Run returns, which joins the
// workers); it returns a reference to avoid copying on the hot path.
#ifndef QFIX_OBS_TRACE_H_
#define QFIX_OBS_TRACE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace qfix {
namespace obs {

struct TraceSpan {
  std::string phase;
  /// Offsets in seconds from the TraceContext's birth.
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  /// Index of the enclosing span in TraceContext::spans(), or -1 for a
  /// top-level phase. Children always appear after their parent.
  int parent = -1;

  double DurationSeconds() const { return end_seconds - start_seconds; }
};

class TraceContext {
 public:
  /// Parent value for a top-level span.
  static constexpr size_t kNoParent = static_cast<size_t>(-2);
  /// Sentinel returned by BeginSpan/AddSpan when the span cap was hit
  /// (the span was dropped). EndSpan() on it is a no-op.
  static constexpr size_t kDroppedSpan = static_cast<size_t>(-1);
  /// Hard cap on spans per trace: keeps a pathological request (a B&B
  /// run at a high node rate, a huge batch) from growing the trace
  /// without bound. Drops are counted, never fatal.
  static constexpr size_t kMaxSpans = 256;

  /// `request_id` empty means "generate one".
  explicit TraceContext(std::string request_id = {});

  const std::string& request_id() const { return request_id_; }

  /// Opens a span at now; returns its index for EndSpan(). `parent` is
  /// the index of the enclosing span (kNoParent for a top-level phase).
  size_t BeginSpan(std::string_view phase, size_t parent = kNoParent);
  /// Closes span `index` at now. No-op for an already-closed span end
  /// in the past — callers may re-close to extend — and for
  /// kDroppedSpan.
  void EndSpan(size_t index);
  /// Records a span with explicit offsets (both relative to birth);
  /// used when a phase's extent is computed after the fact, e.g. the
  /// encode/solve split inside one BatchDiagnoser run. Returns the new
  /// span's index (kDroppedSpan past the cap).
  size_t AddSpan(std::string_view phase, double start_seconds,
                 double end_seconds, size_t parent = kNoParent);

  /// Seconds since this context was born.
  double ElapsedSeconds() const;

  /// NOT safe while another thread is still recording; synchronize
  /// (join the solve) first.
  const std::vector<TraceSpan>& spans() const { return spans_; }
  /// Spans discarded by the kMaxSpans cap.
  uint64_t dropped_spans() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::string request_id_;
  double birth_seconds_ = 0.0;  // monotonic
  mutable std::mutex mu_;       // guards spans_ growth/mutation
  std::vector<TraceSpan> spans_;
  std::atomic<uint64_t> dropped_{0};
};

/// A fresh request id: "q-" + 16 lowercase hex digits, unique within
/// the process and effectively unique across restarts (seeded from the
/// clock once). Thread-safe.
std::string GenerateRequestId();

/// Returns the id if it is safe to echo into a response header and a
/// JSON string — 1..64 chars of [A-Za-z0-9._-] — else empty. Anything
/// else (CR/LF header injection, quotes, overlong ids) is discarded
/// and the server generates its own.
std::string SanitizeRequestId(std::string_view id);

}  // namespace obs
}  // namespace qfix

#endif  // QFIX_OBS_TRACE_H_
