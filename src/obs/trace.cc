#include "obs/trace.h"

#include <atomic>
#include <chrono>

#include "common/logging.h"
#include "common/strings.h"
#include "common/timer.h"

namespace qfix {
namespace obs {

TraceContext::TraceContext(std::string request_id)
    : request_id_(std::move(request_id)), birth_seconds_(MonotonicSeconds()) {
  if (request_id_.empty()) request_id_ = GenerateRequestId();
  spans_.reserve(8);
}

size_t TraceContext::BeginSpan(std::string_view phase, size_t parent) {
  double now = MonotonicSeconds() - birth_seconds_;
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return kDroppedSpan;
  }
  TraceSpan span;
  span.phase = std::string(phase);
  span.start_seconds = now;
  span.end_seconds = now;
  span.parent = (parent == kNoParent || parent >= spans_.size())
                    ? -1
                    : static_cast<int>(parent);
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

void TraceContext::EndSpan(size_t index) {
  if (index == kDroppedSpan) return;
  double now = MonotonicSeconds() - birth_seconds_;
  std::lock_guard<std::mutex> lock(mu_);
  QFIX_CHECK(index < spans_.size());
  if (now > spans_[index].end_seconds) spans_[index].end_seconds = now;
}

size_t TraceContext::AddSpan(std::string_view phase, double start_seconds,
                             double end_seconds, size_t parent) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return kDroppedSpan;
  }
  TraceSpan span;
  span.phase = std::string(phase);
  span.start_seconds = start_seconds;
  span.end_seconds = end_seconds < start_seconds ? start_seconds : end_seconds;
  span.parent = (parent == kNoParent || parent >= spans_.size())
                    ? -1
                    : static_cast<int>(parent);
  spans_.push_back(std::move(span));
  return spans_.size() - 1;
}

double TraceContext::ElapsedSeconds() const {
  return MonotonicSeconds() - birth_seconds_;
}

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::atomic<uint64_t> g_request_id_state{0};

}  // namespace

std::string GenerateRequestId() {
  uint64_t state = g_request_id_state.load(std::memory_order_relaxed);
  if (state == 0) {
    // One-time clock seed; a racing second seeder is harmless (the CAS
    // loser just uses the winner's value).
    uint64_t seed = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    seed |= 1;  // never re-seed
    g_request_id_state.compare_exchange_strong(state, seed,
                                               std::memory_order_relaxed);
  }
  uint64_t ticket =
      g_request_id_state.fetch_add(0x9e3779b97f4a7c15ULL,
                                   std::memory_order_relaxed);
  uint64_t value = SplitMix64(&ticket);
  // Manual hex formatting: this runs once per request (snprintf's
  // format parsing is measurable at that rate, bench/obs.cpp).
  char buf[18];
  buf[0] = 'q';
  buf[1] = '-';
  static const char kHex[] = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[2 + i] = kHex[value & 0xf];
    value >>= 4;
  }
  return std::string(buf, sizeof(buf));
}

std::string SanitizeRequestId(std::string_view id) {
  if (id.empty() || id.size() > 64) return std::string();
  for (char c : id) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return std::string();
  }
  return std::string(id);
}

}  // namespace obs
}  // namespace qfix
